//! Typed columnar storage. Categorical columns are dictionary-encoded, as
//! in the zenvisage storage model (thesis §6.2): "we follow a column
//! oriented storage model".
//!
//! # Chunked lightweight encodings
//!
//! Integer columns and the dictionary codes of categorical columns are
//! stored as a sequence of *sealed chunks* (4096 rows each by default)
//! plus a plain mutable tail. When a chunk fills, one pass gathers its
//! stats (min, max, run count) and seals it under the cheapest encoding
//! ([`ChunkEncoding`]):
//!
//! | Encoding | Payload | Picked when |
//! |----------|---------|-------------|
//! | `Rle`    | `runs × (value + u16 end)`          | sorted/clustered data: fewest bytes of the three |
//! | `Packed` | `rows × width(max−min) bits`        | low-cardinality / narrow-range data: beats RLE and plain |
//! | `Plain`  | `rows × sizeof(T)`                  | neither encoding strictly shrinks the chunk (fallback — nothing ever regresses) |
//!
//! `Packed` is frame-of-reference bit-packing: each value is stored as
//! `value − chunk_min` in exactly `ceil(log2(max − min + 1))` bits, so
//! dictionary codes pack to the observed code width and dense integer
//! keys (years, ids) pack to their range. Selection is by strict byte
//! cost: in `Auto` mode an encoding is used only when its payload is
//! smaller than plain, so pathological data degrades to the plain layout
//! rather than growing. Per-chunk `(min, max)` stats are kept for every
//! sealed chunk; scans use them to short-circuit whole chunks and
//! `minmax` folds them instead of re-reading the data.
//!
//! The `ZV_ENCODING` environment knob overrides the policy process-wide
//! (read at column construction): `auto` (default) selects by cost,
//! `off`/`plain` disables sealing entirely, and `force` always seals to
//! the cheaper of RLE/packed *and* shrinks chunks to 64 rows so even
//! tiny proptest tables exercise the encoded paths. Invalid values panic
//! loudly rather than silently testing the default, mirroring
//! `ZV_SCHED_*`. Floats are always stored plain: measures are consumed
//! bit-for-bit by the aggregation kernels and gain little from integer
//! encodings.

use crate::value::{DataType, Value};
use std::collections::HashMap;

/// Rows per sealed chunk under the default (`Auto`/`Off`) policy. A
/// power of two so row→chunk mapping is a shift; equal to the scan
/// chunk size in `exec` so full-chunk kernels usually see whole
/// segments, though nothing requires the two to stay aligned.
pub const ENC_CHUNK_ROWS: usize = 4096;

/// Rows per sealed chunk under [`EncodingMode::Force`] — small enough
/// that the 1..200-row proptest tables still seal encoded chunks.
pub const FORCE_CHUNK_ROWS: usize = 64;

/// How a column picks encodings at chunk-seal time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodingMode {
    /// Per-chunk byte-cost comparison; plain wherever nothing shrinks.
    Auto,
    /// Never encode — every chunk stays plain (the PR-9-and-earlier
    /// layout, byte for byte).
    Off,
    /// Always seal to the cheaper of RLE/packed, even when plain would
    /// be smaller — for tests that must exercise encoded paths on
    /// arbitrary data.
    Force,
}

/// Per-column encoding policy: the mode plus the sealed-chunk size
/// (always a power of two).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncodePolicy {
    pub mode: EncodingMode,
    /// log2 of rows per sealed chunk.
    pub shift: u32,
}

impl EncodePolicy {
    pub fn auto() -> Self {
        EncodePolicy {
            mode: EncodingMode::Auto,
            shift: ENC_CHUNK_ROWS.trailing_zeros(),
        }
    }

    pub fn off() -> Self {
        EncodePolicy {
            mode: EncodingMode::Off,
            shift: ENC_CHUNK_ROWS.trailing_zeros(),
        }
    }

    pub fn force() -> Self {
        EncodePolicy {
            mode: EncodingMode::Force,
            shift: FORCE_CHUNK_ROWS.trailing_zeros(),
        }
    }

    /// Resolve the process-wide policy from `ZV_ENCODING`. Unset /
    /// empty / `auto` → [`EncodePolicy::auto`]; `off` or `plain` →
    /// [`EncodePolicy::off`]; `force` → [`EncodePolicy::force`].
    /// Anything else panics loudly — a typo'd CI leg must fail, not
    /// silently test the default (same contract as `ZV_SCHED_*`).
    pub fn from_env() -> Self {
        match std::env::var("ZV_ENCODING") {
            Ok(raw) => Self::from_spec(&raw),
            Err(_) => Self::auto(),
        }
    }

    fn from_spec(raw: &str) -> Self {
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Self::auto(),
            "off" | "plain" => Self::off(),
            "force" => Self::force(),
            other => panic!(
                "ZV_ENCODING={other:?} is not a valid encoding mode \
                 (expected auto, off, plain, or force)"
            ),
        }
    }
}

/// Values storable in a [`Chunked`] store: fixed-width integers with a
/// frame-of-reference delta representation.
pub trait Coded: Copy + Ord + std::fmt::Debug + Send + Sync + 'static {
    /// Bytes per value in the plain layout.
    const WIDTH_BYTES: usize;
    /// `self − min` as an unsigned delta (callers guarantee `min ≤ self`).
    fn delta(self, min: Self) -> u64;
    /// Inverse of [`Coded::delta`].
    fn from_delta(min: Self, d: u64) -> Self;
}

impl Coded for i64 {
    const WIDTH_BYTES: usize = 8;
    #[inline(always)]
    fn delta(self, min: Self) -> u64 {
        self.wrapping_sub(min) as u64
    }
    #[inline(always)]
    fn from_delta(min: Self, d: u64) -> Self {
        min.wrapping_add(d as i64)
    }
}

impl Coded for u32 {
    const WIDTH_BYTES: usize = 4;
    #[inline(always)]
    fn delta(self, min: Self) -> u64 {
        (self - min) as u64
    }
    #[inline(always)]
    fn from_delta(min: Self, d: u64) -> Self {
        min + d as u32
    }
}

/// One sealed chunk under a chosen [`ChunkEncoding`].
#[derive(Clone, Debug, PartialEq)]
pub enum EncChunk<T> {
    /// Uncompressed values (the fallback layout).
    Plain(Vec<T>),
    /// Frame-of-reference bit-packing: value `i` is
    /// `min + bits[i·width .. (i+1)·width]`. `width == 0` encodes a
    /// constant chunk with no payload words at all.
    Packed { min: T, width: u32, words: Vec<u64> },
    /// Run-length encoding: `(value, exclusive end offset)` with ends
    /// strictly increasing and the last end equal to the chunk length.
    Rle(Vec<(T, u16)>),
}

/// Discriminant-only view of a chunk's encoding, for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkEncoding {
    Plain,
    Packed,
    Rle,
}

/// Per-encoding chunk census of one column (compression reporting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodingCounts {
    pub plain: usize,
    pub packed: usize,
    pub rle: usize,
    /// Rows still in the mutable plain tail (not yet sealed).
    pub tail_rows: usize,
}

impl EncodingCounts {
    pub fn merge(&mut self, other: &EncodingCounts) {
        self.plain += other.plain;
        self.packed += other.packed;
        self.rle += other.rle;
        self.tail_rows += other.tail_rows;
    }
}

/// Borrowed view of one storage segment (a sealed chunk or the tail).
#[derive(Clone, Copy, Debug)]
pub enum SegRef<'a, T> {
    Plain(&'a [T]),
    Packed {
        min: T,
        width: u32,
        words: &'a [u64],
    },
    Rle(&'a [(T, u16)]),
}

/// One storage segment located by row id: its base row, row count,
/// sealed-time stats (`None` for the mutable tail), and data view.
#[derive(Clone, Copy, Debug)]
pub struct Segment<'a, T> {
    pub base: usize,
    pub len: usize,
    /// `(min, max)` gathered when the chunk was sealed; `None` for the
    /// tail (scan kernels skip stat short-circuits there).
    pub stat: Option<(T, T)>,
    pub data: SegRef<'a, T>,
}

/// Extract packed value `i` (the delta, before adding `min`) from a
/// frame-of-reference bit-packed word array. Values span at most two
/// words because `width ≤ 64`.
#[inline(always)]
pub fn packed_delta(words: &[u64], width: u32, i: usize) -> u64 {
    debug_assert!(width > 0);
    let bit = i * width as usize;
    let w = bit >> 6;
    let off = (bit & 63) as u32;
    let mut d = words[w] >> off;
    if off + width > 64 {
        d |= words[w + 1] << (64 - off);
    }
    if width < 64 {
        d &= (1u64 << width) - 1;
    }
    d
}

/// A chunked, per-chunk-encoded store of fixed-width values: sealed
/// chunks (encoded at seal time by byte cost) plus a plain mutable
/// tail. Append-only — the `Table` mutation model never truncates.
#[derive(Clone, Debug)]
pub struct Chunked<T: Coded> {
    /// log2 of rows per sealed chunk.
    shift: u32,
    mode: EncodingMode,
    chunks: Vec<EncChunk<T>>,
    /// `(min, max)` per sealed chunk, parallel to `chunks`.
    stats: Vec<(T, T)>,
    tail: Vec<T>,
}

pub type IntColumn = Chunked<i64>;
pub type CodeColumn = Chunked<u32>;

/// Borrowed view of a [`Chunked`] store's serialized parts: `(shift,
/// sealed chunks, per-chunk stats, plain tail)` — see [`Chunked::parts`].
pub type ChunkedParts<'a, T> = (u32, &'a [EncChunk<T>], &'a [(T, T)], &'a [T]);

impl<T: Coded> Chunked<T> {
    pub fn new(policy: EncodePolicy) -> Self {
        Chunked {
            shift: policy.shift,
            mode: policy.mode,
            chunks: Vec::new(),
            stats: Vec::new(),
            tail: Vec::new(),
        }
    }

    pub fn with_env_policy() -> Self {
        Self::new(EncodePolicy::from_env())
    }

    pub fn from_vec(vals: Vec<T>, policy: EncodePolicy) -> Self {
        let mut c = Self::new(policy);
        c.extend(vals);
        c
    }

    /// Reassemble a store from its serialized parts (snapshot load).
    /// The caller has already structurally validated the chunks; chunk
    /// sizes must match `1 << shift` except that no chunk may be empty.
    pub fn from_parts(
        shift: u32,
        mode: EncodingMode,
        chunks: Vec<EncChunk<T>>,
        stats: Vec<(T, T)>,
        tail: Vec<T>,
    ) -> Self {
        debug_assert_eq!(chunks.len(), stats.len());
        Chunked {
            shift,
            mode,
            chunks,
            stats,
            tail,
        }
    }

    /// The serialized parts: `(shift, sealed chunks, per-chunk stats,
    /// plain tail)` — what `persist` writes verbatim.
    pub fn parts(&self) -> ChunkedParts<'_, T> {
        (self.shift, &self.chunks, &self.stats, &self.tail)
    }

    #[inline]
    pub fn len(&self) -> usize {
        (self.chunks.len() << self.shift) + self.tail.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty() && self.tail.is_empty()
    }

    #[inline]
    fn chunk_rows(&self) -> usize {
        1usize << self.shift
    }

    #[inline]
    fn sealed_rows(&self) -> usize {
        self.chunks.len() << self.shift
    }

    pub fn push(&mut self, v: T) {
        self.tail.push(v);
        if self.tail.len() == self.chunk_rows() {
            self.seal_tail();
        }
    }

    pub fn extend(&mut self, vals: impl IntoIterator<Item = T>) {
        for v in vals {
            self.push(v);
        }
    }

    /// Append every value of `other`. When both stores share a shift
    /// and this tail is empty, `other`'s sealed chunks are copied
    /// verbatim (no re-encode) — the common bulk-append case.
    pub fn append_from(&mut self, other: &Chunked<T>) {
        if self.tail.is_empty() && self.shift == other.shift {
            self.chunks.extend(other.chunks.iter().cloned());
            self.stats.extend(other.stats.iter().copied());
            self.tail.extend_from_slice(&other.tail);
            if self.tail.len() == self.chunk_rows() {
                self.seal_tail();
            }
            return;
        }
        other.for_each_range(0, other.len(), |_, v| self.push(v));
    }

    fn seal_tail(&mut self) {
        debug_assert_eq!(self.tail.len(), self.chunk_rows());
        let vals = &self.tail;
        let mut min = vals[0];
        let mut max = vals[0];
        let mut runs = 1usize;
        for w in vals.windows(2) {
            if w[1] < min {
                min = w[1];
            }
            if w[1] > max {
                max = w[1];
            }
            if w[1] != w[0] {
                runs += 1;
            }
        }
        let chunk = encode_chunk(vals, min, max, runs, self.mode);
        self.chunks.push(chunk);
        self.stats.push((min, max));
        self.tail.clear();
    }

    /// Random access. Sealed packed chunks pay a two-word bit extract,
    /// RLE chunks a binary search on run ends.
    #[inline]
    pub fn get(&self, row: usize) -> T {
        let chunk = row >> self.shift;
        if chunk >= self.chunks.len() {
            return self.tail[row - self.sealed_rows()];
        }
        let off = row & (self.chunk_rows() - 1);
        match &self.chunks[chunk] {
            EncChunk::Plain(v) => v[off],
            EncChunk::Packed { min, width, words } => {
                if *width == 0 {
                    *min
                } else {
                    T::from_delta(*min, packed_delta(words, *width, off))
                }
            }
            EncChunk::Rle(runs) => {
                let i = runs.partition_point(|&(_, end)| (end as usize) <= off);
                runs[i].0
            }
        }
    }

    /// The storage segment containing `row` (sealed chunk or tail).
    #[inline]
    pub fn segment(&self, row: usize) -> Segment<'_, T> {
        let chunk = row >> self.shift;
        if chunk >= self.chunks.len() {
            return Segment {
                base: self.sealed_rows(),
                len: self.tail.len(),
                stat: None,
                data: SegRef::Plain(&self.tail),
            };
        }
        let data = match &self.chunks[chunk] {
            EncChunk::Plain(v) => SegRef::Plain(v),
            EncChunk::Packed { min, width, words } => SegRef::Packed {
                min: *min,
                width: *width,
                words,
            },
            EncChunk::Rle(runs) => SegRef::Rle(runs),
        };
        Segment {
            base: chunk << self.shift,
            len: self.chunk_rows(),
            stat: Some(self.stats[chunk]),
            data,
        }
    }

    /// Sequential decode of rows `start..end`, run- and word-aware.
    pub fn for_each_range(&self, start: usize, end: usize, mut f: impl FnMut(usize, T)) {
        debug_assert!(start <= end && end <= self.len());
        let mut row = start;
        while row < end {
            let seg = self.segment(row);
            let stop = end.min(seg.base + seg.len);
            match seg.data {
                SegRef::Plain(v) => {
                    for r in row..stop {
                        f(r, v[r - seg.base]);
                    }
                }
                SegRef::Packed { min, width, words } => {
                    if width == 0 {
                        for r in row..stop {
                            f(r, min);
                        }
                    } else {
                        for r in row..stop {
                            f(
                                r,
                                T::from_delta(min, packed_delta(words, width, r - seg.base)),
                            );
                        }
                    }
                }
                SegRef::Rle(runs) => {
                    let mut off = row - seg.base;
                    let mut i = runs.partition_point(|&(_, end)| (end as usize) <= off);
                    while off < stop - seg.base {
                        let (v, run_end) = runs[i];
                        let run_stop = (run_end as usize).min(stop - seg.base);
                        for o in off..run_stop {
                            f(seg.base + o, v);
                        }
                        off = run_stop;
                        i += 1;
                    }
                }
            }
            row = stop;
        }
    }

    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_range(0, self.len(), |_, v| out.push(v));
        out
    }

    /// `(min, max)` over rows `start..end`, folding sealed-chunk stats
    /// for fully covered chunks and scanning only the partial edges —
    /// O(chunks + edge rows), not O(rows).
    pub fn minmax(&self, start: usize, end: usize) -> Option<(T, T)> {
        if start >= end {
            return None;
        }
        let mut acc: Option<(T, T)> = None;
        let mut fold = |lo: T, hi: T| {
            acc = Some(match acc {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        };
        let mut row = start;
        while row < end {
            let seg = self.segment(row);
            let stop = end.min(seg.base + seg.len);
            match seg.stat {
                Some((lo, hi)) if row == seg.base && stop == seg.base + seg.len => fold(lo, hi),
                _ => {
                    let mut lo: Option<(T, T)> = None;
                    self.for_each_range(row, stop, |_, v| {
                        lo = Some(match lo {
                            None => (v, v),
                            Some((a, b)) => (a.min(v), b.max(v)),
                        });
                    });
                    if let Some((a, b)) = lo {
                        fold(a, b);
                    }
                }
            }
            row = stop;
        }
        acc
    }

    /// Rows [`Chunked::minmax`] would actually *decode* for
    /// `[start, end)` — partial edge chunks plus the tail; fully covered
    /// sealed chunks answer from their stored stats and cost zero. This
    /// is the accounting behind the O(delta) append guarantee: a
    /// full-column stat recompute after a batch append decodes at most
    /// one chunk of tail rows no matter how large the table has grown,
    /// and the IVM bench asserts exactly that.
    pub fn stat_scan_rows(&self, start: usize, end: usize) -> usize {
        let mut rows = 0;
        let mut row = start.min(self.len());
        let end = end.min(self.len());
        while row < end {
            let seg = self.segment(row);
            let stop = end.min(seg.base + seg.len);
            match seg.stat {
                Some(_) if row == seg.base && stop == seg.base + seg.len => {}
                _ => rows += stop - row,
            }
            row = stop;
        }
        rows
    }

    /// Heap bytes held by the encoded payloads (compression reporting).
    pub fn heap_bytes(&self) -> usize {
        let chunk_bytes: usize = self
            .chunks
            .iter()
            .map(|c| match c {
                EncChunk::Plain(v) => v.len() * T::WIDTH_BYTES,
                EncChunk::Packed { words, .. } => words.len() * 8,
                EncChunk::Rle(runs) => runs.len() * (T::WIDTH_BYTES + 2),
            })
            .sum();
        chunk_bytes + self.tail.len() * T::WIDTH_BYTES + self.stats.len() * 2 * T::WIDTH_BYTES
    }

    pub fn encoding_counts(&self) -> EncodingCounts {
        let mut counts = EncodingCounts {
            tail_rows: self.tail.len(),
            ..Default::default()
        };
        for c in &self.chunks {
            match c {
                EncChunk::Plain(_) => counts.plain += 1,
                EncChunk::Packed { .. } => counts.packed += 1,
                EncChunk::Rle(_) => counts.rle += 1,
            }
        }
        counts
    }
}

/// Value equality — two stores are equal when they hold the same rows,
/// regardless of how each one chunked or encoded them.
impl<T: Coded> PartialEq for Chunked<T> {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut eq = true;
        self.for_each_range(0, self.len(), |row, v| {
            if eq && other.get(row) != v {
                eq = false;
            }
        });
        eq
    }
}

impl<T: Coded> FromIterator<T> for Chunked<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut c = Self::with_env_policy();
        c.extend(iter);
        c
    }
}

impl<T: Coded> From<Vec<T>> for Chunked<T> {
    fn from(vals: Vec<T>) -> Self {
        Self::from_vec(vals, EncodePolicy::from_env())
    }
}

/// Seal one full chunk under the policy's selection rule (see the
/// module docs for the cost table).
fn encode_chunk<T: Coded>(
    vals: &[T],
    min: T,
    max: T,
    runs: usize,
    mode: EncodingMode,
) -> EncChunk<T> {
    if mode == EncodingMode::Off {
        return EncChunk::Plain(vals.to_vec());
    }
    let range = max.delta(min);
    let width = 64 - range.leading_zeros();
    let cost_packed = (vals.len() * width as usize).div_ceil(64) * 8;
    let cost_rle = runs * (T::WIDTH_BYTES + 2);
    let cost_plain = vals.len() * T::WIDTH_BYTES;
    let best_encoded = cost_rle.min(cost_packed);
    if mode == EncodingMode::Auto && best_encoded >= cost_plain {
        return EncChunk::Plain(vals.to_vec());
    }
    if cost_rle < cost_packed {
        let mut runs_out: Vec<(T, u16)> = Vec::with_capacity(runs);
        for (i, &v) in vals.iter().enumerate() {
            match runs_out.last_mut() {
                Some(last) if last.0 == v => last.1 = (i + 1) as u16,
                _ => runs_out.push((v, (i + 1) as u16)),
            }
        }
        EncChunk::Rle(runs_out)
    } else if width == 0 {
        EncChunk::Packed {
            min,
            width: 0,
            words: Vec::new(),
        }
    } else {
        let mut words = vec![0u64; (vals.len() * width as usize).div_ceil(64)];
        let mut bit = 0usize;
        for &v in vals {
            let d = v.delta(min);
            let w = bit >> 6;
            let off = (bit & 63) as u32;
            words[w] |= d << off;
            if off + width > 64 {
                words[w + 1] = d >> (64 - off);
            }
            bit += width as usize;
        }
        EncChunk::Packed { min, width, words }
    }
}

/// A dictionary-encoded string column. Codes live in a chunked,
/// per-chunk-encoded store ([`CodeColumn`]), bit-packed to the observed
/// dictionary width (or run-length encoded when values cluster).
#[derive(Clone, Debug)]
pub struct CatColumn {
    /// Distinct values, in first-seen order; code `i` means `dict[i]`.
    dict: Vec<String>,
    lookup: HashMap<String, u32>,
    codes: CodeColumn,
}

impl Default for CatColumn {
    fn default() -> Self {
        Self::new()
    }
}

impl CatColumn {
    pub fn new() -> Self {
        Self::with_policy(EncodePolicy::from_env())
    }

    pub fn with_policy(policy: EncodePolicy) -> Self {
        CatColumn {
            dict: Vec::new(),
            lookup: HashMap::new(),
            codes: CodeColumn::new(policy),
        }
    }

    pub fn push(&mut self, v: &str) {
        let code = self.intern(v);
        self.codes.push(code);
    }

    /// Get-or-insert a dictionary code without appending a row.
    pub fn intern(&mut self, v: &str) -> u32 {
        if let Some(&c) = self.lookup.get(v) {
            return c;
        }
        let c = self.dict.len() as u32;
        self.dict.push(v.to_string());
        self.lookup.insert(v.to_string(), c);
        c
    }

    /// Append a row by pre-interned dictionary code (the fast generator
    /// path — avoids per-row string hashing).
    pub fn push_code(&mut self, code: u32) {
        debug_assert!(
            (code as usize) < self.dict.len(),
            "code {code} not interned"
        );
        self.codes.push(code);
    }

    pub fn code_of(&self, v: &str) -> Option<u32> {
        self.lookup.get(v).copied()
    }

    pub fn decode(&self, code: u32) -> &str {
        &self.dict[code as usize]
    }

    /// The chunked code store.
    pub fn codes(&self) -> &CodeColumn {
        &self.codes
    }

    /// The dictionary code at `row`.
    #[inline]
    pub fn code_at(&self, row: usize) -> u32 {
        self.codes.get(row)
    }

    /// Rebuild from serialized parts (snapshot load).
    pub fn from_parts(dict: Vec<String>, codes: CodeColumn) -> Self {
        let lookup = dict
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        CatColumn {
            dict,
            lookup,
            codes,
        }
    }

    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    pub fn len(&self) -> usize {
        self.codes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// One column of a [`crate::table::Table`].
#[derive(Clone, Debug)]
pub enum Column {
    Int(IntColumn),
    Float(Vec<f64>),
    Cat(CatColumn),
}

impl Column {
    pub fn new(dtype: DataType) -> Self {
        Self::with_policy(dtype, EncodePolicy::from_env())
    }

    /// Construct with an explicit encoding policy (tests compare
    /// per-policy stores without racing on the environment).
    pub fn with_policy(dtype: DataType, policy: EncodePolicy) -> Self {
        match dtype {
            DataType::Int => Column::Int(IntColumn::new(policy)),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Cat => Column::Cat(CatColumn::with_policy(policy)),
        }
    }

    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Cat(_) => DataType::Cat,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Cat(c) => c.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`Column::push`] would accept `v` (same coercion rules),
    /// without mutating anything — used to pre-validate batch appends.
    pub fn accepts(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (Column::Int(_), Value::Int(_) | Value::Float(_))
                | (Column::Float(_), Value::Int(_) | Value::Float(_))
                | (Column::Cat(_), Value::Str(_))
        )
    }

    /// Append every row of `other` onto this column. Numeric columns
    /// extend value-at-a-time (sealed chunks copy verbatim when the
    /// layouts line up); categorical columns remap the other
    /// dictionary's codes through a translation table built once per
    /// call (an identity remap also copies chunks verbatim).
    pub fn append(&mut self, other: &Column) -> Result<(), String> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.append_from(b),
            (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
            (Column::Cat(a), Column::Cat(b)) => {
                let remap: Vec<u32> = b.dict().iter().map(|s| a.intern(s)).collect();
                if remap.iter().enumerate().all(|(i, &c)| i as u32 == c) {
                    a.codes.append_from(&b.codes);
                } else {
                    b.codes.for_each_range(0, b.len(), |_, code| {
                        a.codes.push(remap[code as usize]);
                    });
                }
            }
            (a, b) => {
                return Err(format!(
                    "cannot append {} column onto {} column",
                    b.dtype(),
                    a.dtype()
                ))
            }
        }
        Ok(())
    }

    pub fn push(&mut self, v: &Value) -> Result<(), String> {
        match (self, v) {
            (Column::Int(col), Value::Int(i)) => col.push(*i),
            (Column::Int(col), Value::Float(f)) => col.push(*f as i64),
            (Column::Float(col), Value::Float(f)) => col.push(*f),
            (Column::Float(col), Value::Int(i)) => col.push(*i as f64),
            (Column::Cat(col), Value::Str(s)) => col.push(s),
            (col, v) => {
                return Err(format!(
                    "type mismatch: cannot store {v:?} in {} column",
                    col.dtype()
                ))
            }
        }
        Ok(())
    }

    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v.get(row)),
            Column::Float(v) => Value::Float(v[row]),
            Column::Cat(c) => Value::Str(c.decode(c.code_at(row)).to_string()),
        }
    }

    /// Numeric view of a row (cat columns have no numeric view).
    #[inline]
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => Some(v.get(row) as f64),
            Column::Float(v) => Some(v[row]),
            Column::Cat(_) => None,
        }
    }

    pub fn as_cat(&self) -> Option<&CatColumn> {
        match self {
            Column::Cat(c) => Some(c),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<&IntColumn> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Distinct values in a canonical order: dictionary order for cat
    /// columns (first-seen), ascending for numeric columns.
    pub fn distinct_values(&self) -> Vec<Value> {
        match self {
            Column::Cat(c) => c.dict().iter().map(|s| Value::str(s.clone())).collect(),
            Column::Int(v) => {
                let mut d: Vec<i64> = v.to_vec();
                d.sort_unstable();
                d.dedup();
                d.into_iter().map(Value::Int).collect()
            }
            Column::Float(v) => {
                let mut d: Vec<f64> = v.clone();
                d.sort_by(|a, b| a.total_cmp(b));
                d.dedup_by(|a, b| a.to_bits() == b.to_bits());
                d.into_iter().map(Value::Float).collect()
            }
        }
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        match self {
            Column::Cat(c) => c.cardinality(),
            _ => self.distinct_values().len(),
        }
    }

    /// Heap bytes held by this column's data payloads.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.heap_bytes(),
            Column::Float(v) => v.len() * 8,
            Column::Cat(c) => {
                c.codes().heap_bytes() + c.dict().iter().map(|s| s.len() + 24).sum::<usize>()
            }
        }
    }

    /// Per-encoding chunk census for Int/Cat columns (`None` for
    /// floats, which are always plain).
    pub fn encoding_counts(&self) -> Option<EncodingCounts> {
        match self {
            Column::Int(v) => Some(v.encoding_counts()),
            Column::Cat(c) => Some(c.codes().encoding_counts()),
            Column::Float(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_column_interning() {
        let mut c = CatColumn::new();
        c.push("US");
        c.push("UK");
        c.push("US");
        assert_eq!(c.len(), 3);
        assert_eq!(c.cardinality(), 2);
        assert_eq!(c.codes().to_vec(), vec![0, 1, 0]);
        assert_eq!(c.decode(1), "UK");
        assert_eq!(c.code_of("US"), Some(0));
        assert_eq!(c.code_of("FR"), None);
    }

    #[test]
    fn column_push_and_get() {
        let mut c = Column::new(DataType::Int);
        c.push(&Value::Int(7)).unwrap();
        c.push(&Value::Float(2.9)).unwrap(); // coerced
        assert_eq!(c.get(0), Value::Int(7));
        assert_eq!(c.get(1), Value::Int(2));
        assert!(c.push(&Value::str("oops")).is_err());
    }

    #[test]
    fn append_remaps_codes_and_rejects_type_mismatch() {
        let mut a = Column::new(DataType::Cat);
        for v in ["US", "UK"] {
            a.push(&Value::str(v)).unwrap();
        }
        let mut b = Column::new(DataType::Cat);
        for v in ["FR", "UK"] {
            b.push(&Value::str(v)).unwrap();
        }
        a.append(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(2), Value::str("FR"));
        assert_eq!(a.get(3), Value::str("UK"));
        assert_eq!(a.cardinality(), 3);

        let mut ints = Column::new(DataType::Int);
        ints.append(&Column::Int(vec![1, 2].into())).unwrap();
        assert_eq!(ints.len(), 2);
        assert!(ints.append(&b).is_err());
        assert!(ints.accepts(&Value::Int(1)));
        assert!(ints.accepts(&Value::Float(1.5)));
        assert!(!ints.accepts(&Value::str("x")));
    }

    #[test]
    fn distinct_values_ordering() {
        let mut c = Column::new(DataType::Int);
        for v in [3i64, 1, 3, 2] {
            c.push(&Value::Int(v)).unwrap();
        }
        assert_eq!(
            c.distinct_values(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );

        let mut c = Column::new(DataType::Cat);
        for v in ["b", "a", "b"] {
            c.push(&Value::str(v)).unwrap();
        }
        // first-seen dictionary order, not alphabetical
        assert_eq!(c.distinct_values(), vec![Value::str("b"), Value::str("a")]);
        assert_eq!(c.cardinality(), 2);
    }

    /// Reference data generator: a mix of constant stretches (RLE bait),
    /// a narrow modular range (packing bait), and spikes (plain bait).
    fn mixed_vals(n: usize) -> Vec<i64> {
        (0..n)
            .map(|i| match i / 700 % 3 {
                0 => 42,
                1 => (i % 37) as i64,
                _ => (i as i64).wrapping_mul(0x9e37_79b9_7f4a_7c15u64 as i64),
            })
            .collect()
    }

    #[test]
    fn chunked_roundtrips_under_every_policy() {
        let vals = mixed_vals(10_000);
        for policy in [
            EncodePolicy::auto(),
            EncodePolicy::off(),
            EncodePolicy::force(),
        ] {
            let c = IntColumn::from_vec(vals.clone(), policy);
            assert_eq!(c.len(), vals.len());
            assert_eq!(c.to_vec(), vals, "sequential decode ({policy:?})");
            for &row in &[0usize, 1, 63, 64, 699, 700, 4095, 4096, 9000, 9999] {
                assert_eq!(
                    c.get(row),
                    vals[row],
                    "random access row {row} ({policy:?})"
                );
            }
        }
    }

    #[test]
    fn auto_policy_picks_each_encoding_where_it_wins() {
        let n = ENC_CHUNK_ROWS;
        let constant = IntColumn::from_vec(vec![7i64; n], EncodePolicy::auto());
        assert_eq!(
            constant.encoding_counts().packed,
            1,
            "constant chunk → width-0 packing (zero payload beats RLE)"
        );
        let sorted = IntColumn::from_vec(
            (0..n).map(|i| (i / 512) as i64).collect(),
            EncodePolicy::auto(),
        );
        assert_eq!(sorted.encoding_counts().rle, 1, "long runs → RLE");
        let narrow = IntColumn::from_vec(
            (0..n).map(|i| (i % 37) as i64).collect(),
            EncodePolicy::auto(),
        );
        assert_eq!(narrow.encoding_counts().packed, 1, "narrow range → packed");
        let wild = IntColumn::from_vec(
            (0..n)
                .map(|i| (i as i64).wrapping_mul(0x9e37_79b9_7f4a_7c15u64 as i64))
                .collect(),
            EncodePolicy::auto(),
        );
        assert_eq!(
            wild.encoding_counts().plain,
            1,
            "wide random → plain fallback"
        );
    }

    #[test]
    fn off_policy_never_encodes_and_force_always_does() {
        let n = 3 * ENC_CHUNK_ROWS;
        let vals: Vec<i64> = (0..n).map(|i| (i % 5) as i64).collect();
        let off = IntColumn::from_vec(vals.clone(), EncodePolicy::off());
        let counts = off.encoding_counts();
        assert_eq!((counts.plain, counts.packed, counts.rle), (3, 0, 0));
        let force = IntColumn::from_vec(vals.clone(), EncodePolicy::force());
        let counts = force.encoding_counts();
        assert_eq!(counts.plain, 0, "force never leaves a sealed chunk plain");
        assert_eq!(off.to_vec(), force.to_vec());
        assert_eq!(off, force, "value equality ignores encoding");
    }

    #[test]
    fn minmax_folds_chunk_stats_and_edge_scans() {
        let vals = mixed_vals(10_000);
        let c = IntColumn::from_vec(vals.clone(), EncodePolicy::auto());
        for (s, e) in [
            (0, 10_000),
            (100, 200),
            (4000, 5000),
            (0, 1),
            (9998, 10_000),
        ] {
            let expect = vals[s..e]
                .iter()
                .fold(None, |acc: Option<(i64, i64)>, &v| match acc {
                    None => Some((v, v)),
                    Some((a, b)) => Some((a.min(v), b.max(v))),
                });
            assert_eq!(c.minmax(s, e), expect, "range {s}..{e}");
        }
        assert_eq!(c.minmax(5, 5), None);
    }

    #[test]
    fn append_from_copies_sealed_chunks_verbatim() {
        let a_vals = mixed_vals(2 * ENC_CHUNK_ROWS);
        let b_vals = mixed_vals(ENC_CHUNK_ROWS + 17);
        let mut a = IntColumn::from_vec(a_vals.clone(), EncodePolicy::auto());
        let b = IntColumn::from_vec(b_vals.clone(), EncodePolicy::auto());
        a.append_from(&b);
        let mut expect = a_vals;
        expect.extend_from_slice(&b_vals);
        assert_eq!(a.to_vec(), expect);
        // Mismatched shifts fall back to the per-value path, same rows.
        let mut c = IntColumn::from_vec(expect[..100].to_vec(), EncodePolicy::force());
        c.append_from(&b);
        assert_eq!(c.len(), 100 + b_vals.len());
        assert_eq!(c.get(100), b_vals[0]);
    }

    #[test]
    fn env_spec_parses_and_rejects() {
        assert_eq!(EncodePolicy::from_spec("auto"), EncodePolicy::auto());
        assert_eq!(EncodePolicy::from_spec(" "), EncodePolicy::auto());
        assert_eq!(EncodePolicy::from_spec("OFF"), EncodePolicy::off());
        assert_eq!(EncodePolicy::from_spec("plain"), EncodePolicy::off());
        assert_eq!(EncodePolicy::from_spec("force"), EncodePolicy::force());
        assert!(std::panic::catch_unwind(|| EncodePolicy::from_spec("fast")).is_err());
    }

    #[test]
    fn packed_extraction_handles_word_straddles() {
        // width 13 over 4096 rows: values straddle word boundaries.
        let n = ENC_CHUNK_ROWS;
        let vals: Vec<i64> = (0..n)
            .map(|i| 1000 + ((i * 2654435761) % 8000) as i64)
            .collect();
        let c = IntColumn::from_vec(vals.clone(), EncodePolicy::auto());
        let counts = c.encoding_counts();
        assert_eq!(counts.packed, 1);
        for (row, &v) in vals.iter().enumerate() {
            assert_eq!(c.get(row), v, "row {row}");
        }
    }
}
