//! Typed columnar storage. Categorical columns are dictionary-encoded, as
//! in the zenvisage storage model (thesis §6.2): "we follow a column
//! oriented storage model".

use crate::value::{DataType, Value};
use std::collections::HashMap;

/// A dictionary-encoded string column.
#[derive(Clone, Debug, Default)]
pub struct CatColumn {
    /// Distinct values, in first-seen order; code `i` means `dict[i]`.
    dict: Vec<String>,
    lookup: HashMap<String, u32>,
    codes: Vec<u32>,
}

impl CatColumn {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, v: &str) {
        let code = self.intern(v);
        self.codes.push(code);
    }

    /// Get-or-insert a dictionary code without appending a row.
    pub fn intern(&mut self, v: &str) -> u32 {
        if let Some(&c) = self.lookup.get(v) {
            return c;
        }
        let c = self.dict.len() as u32;
        self.dict.push(v.to_string());
        self.lookup.insert(v.to_string(), c);
        c
    }

    /// Append a row by pre-interned dictionary code (the fast generator
    /// path — avoids per-row string hashing).
    pub fn push_code(&mut self, code: u32) {
        debug_assert!(
            (code as usize) < self.dict.len(),
            "code {code} not interned"
        );
        self.codes.push(code);
    }

    pub fn code_of(&self, v: &str) -> Option<u32> {
        self.lookup.get(v).copied()
    }

    pub fn decode(&self, code: u32) -> &str {
        &self.dict[code as usize]
    }

    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    pub fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    pub fn len(&self) -> usize {
        self.codes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// One column of a [`crate::table::Table`].
#[derive(Clone, Debug)]
pub enum Column {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Cat(CatColumn),
}

impl Column {
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Cat => Column::Cat(CatColumn::new()),
        }
    }

    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Cat(_) => DataType::Cat,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Cat(c) => c.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`Column::push`] would accept `v` (same coercion rules),
    /// without mutating anything — used to pre-validate batch appends.
    pub fn accepts(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (Column::Int(_), Value::Int(_) | Value::Float(_))
                | (Column::Float(_), Value::Int(_) | Value::Float(_))
                | (Column::Cat(_), Value::Str(_))
        )
    }

    /// Append every row of `other` onto this column. Numeric columns
    /// extend slice-at-a-time; categorical columns remap the other
    /// dictionary's codes through a translation table built once per call.
    pub fn append(&mut self, other: &Column) -> Result<(), String> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
            (Column::Cat(a), Column::Cat(b)) => {
                let remap: Vec<u32> = b.dict().iter().map(|s| a.intern(s)).collect();
                for &code in b.codes() {
                    a.push_code(remap[code as usize]);
                }
            }
            (a, b) => {
                return Err(format!(
                    "cannot append {} column onto {} column",
                    b.dtype(),
                    a.dtype()
                ))
            }
        }
        Ok(())
    }

    pub fn push(&mut self, v: &Value) -> Result<(), String> {
        match (self, v) {
            (Column::Int(col), Value::Int(i)) => col.push(*i),
            (Column::Int(col), Value::Float(f)) => col.push(*f as i64),
            (Column::Float(col), Value::Float(f)) => col.push(*f),
            (Column::Float(col), Value::Int(i)) => col.push(*i as f64),
            (Column::Cat(col), Value::Str(s)) => col.push(s),
            (col, v) => {
                return Err(format!(
                    "type mismatch: cannot store {v:?} in {} column",
                    col.dtype()
                ))
            }
        }
        Ok(())
    }

    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Cat(c) => Value::Str(c.decode(c.codes()[row]).to_string()),
        }
    }

    /// Numeric view of a row (cat columns have no numeric view).
    #[inline]
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int(v) => Some(v[row] as f64),
            Column::Float(v) => Some(v[row]),
            Column::Cat(_) => None,
        }
    }

    pub fn as_cat(&self) -> Option<&CatColumn> {
        match self {
            Column::Cat(c) => Some(c),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Distinct values in a canonical order: dictionary order for cat
    /// columns (first-seen), ascending for numeric columns.
    pub fn distinct_values(&self) -> Vec<Value> {
        match self {
            Column::Cat(c) => c.dict().iter().map(|s| Value::str(s.clone())).collect(),
            Column::Int(v) => {
                let mut d: Vec<i64> = v.clone();
                d.sort_unstable();
                d.dedup();
                d.into_iter().map(Value::Int).collect()
            }
            Column::Float(v) => {
                let mut d: Vec<f64> = v.clone();
                d.sort_by(|a, b| a.total_cmp(b));
                d.dedup_by(|a, b| a.to_bits() == b.to_bits());
                d.into_iter().map(Value::Float).collect()
            }
        }
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        match self {
            Column::Cat(c) => c.cardinality(),
            _ => self.distinct_values().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_column_interning() {
        let mut c = CatColumn::new();
        c.push("US");
        c.push("UK");
        c.push("US");
        assert_eq!(c.len(), 3);
        assert_eq!(c.cardinality(), 2);
        assert_eq!(c.codes(), &[0, 1, 0]);
        assert_eq!(c.decode(1), "UK");
        assert_eq!(c.code_of("US"), Some(0));
        assert_eq!(c.code_of("FR"), None);
    }

    #[test]
    fn column_push_and_get() {
        let mut c = Column::new(DataType::Int);
        c.push(&Value::Int(7)).unwrap();
        c.push(&Value::Float(2.9)).unwrap(); // coerced
        assert_eq!(c.get(0), Value::Int(7));
        assert_eq!(c.get(1), Value::Int(2));
        assert!(c.push(&Value::str("oops")).is_err());
    }

    #[test]
    fn append_remaps_codes_and_rejects_type_mismatch() {
        let mut a = Column::new(DataType::Cat);
        for v in ["US", "UK"] {
            a.push(&Value::str(v)).unwrap();
        }
        let mut b = Column::new(DataType::Cat);
        for v in ["FR", "UK"] {
            b.push(&Value::str(v)).unwrap();
        }
        a.append(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(2), Value::str("FR"));
        assert_eq!(a.get(3), Value::str("UK"));
        assert_eq!(a.cardinality(), 3);

        let mut ints = Column::new(DataType::Int);
        ints.append(&Column::Int(vec![1, 2])).unwrap();
        assert_eq!(ints.len(), 2);
        assert!(ints.append(&b).is_err());
        assert!(ints.accepts(&Value::Int(1)));
        assert!(ints.accepts(&Value::Float(1.5)));
        assert!(!ints.accepts(&Value::str("x")));
    }

    #[test]
    fn distinct_values_ordering() {
        let mut c = Column::new(DataType::Int);
        for v in [3i64, 1, 3, 2] {
            c.push(&Value::Int(v)).unwrap();
        }
        assert_eq!(
            c.distinct_values(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );

        let mut c = Column::new(DataType::Cat);
        for v in ["b", "a", "b"] {
            c.push(&Value::str(v)).unwrap();
        }
        // first-seen dictionary order, not alphabetical
        assert_eq!(c.distinct_values(), vec![Value::str("b"), Value::str("a")]);
        assert_eq!(c.cardinality(), 2);
    }
}
