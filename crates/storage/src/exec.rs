//! Shared execution machinery for both database backends: predicate
//! compilation, group-key encoding, and the grouped-aggregation kernel.
//!
//! Both backends reduce a [`SelectQuery`] to:
//!
//! 1. a row source (all rows / a roaring bitmap / a filtered scan),
//! 2. a composite group key `(z₁, …, z_k, x)` encoded as a dense integer,
//! 3. an accumulation pass (dense array or hash map, see
//!    [`GroupStrategy`]), and
//! 4. a finalize pass that decodes keys and sorts by `(key, x)` — the
//!    `ORDER BY Z, X` of the canonical query.
//!
//! # Architecture: the chunk → morsel → ordered-merge pipeline
//!
//! The accumulation pass is **chunk-at-a-time and schedulable** rather
//! than row-at-a-time:
//!
//! ```text
//!   RowSource ──▶ qualifying row-ids, CHUNK_ROWS at a time (reused buffer)
//!       │
//!       ├─ chunk codes:   for each dimension, a columnar pass adds
//!       │                 `encode(row) · stride` into a reusable u64
//!       │                 code buffer (one `match` per chunk per dim,
//!       │                 not one per row)
//!       │
//!       ├─ chunk update:  Dense  → acc[code] += y        (array index)
//!       │                 Hash   → entry-API slot lookup (one probe),
//!       │                          per-chunk capacity reservation
//!       │
//!       ├─ morsels:       `aggregate_morsel` (the default, see
//!       │                 [`SchedulingMode`]) carves the source into
//!       │                 fixed-size, chunk-aligned morsels of
//!       │                 [`MORSEL_ROWS`] rows (row ranges, or slices of
//!       │                 the materialized bitmap); workers *claim*
//!       │                 morsels off a shared atomic cursor, so a worker
//!       │                 that drew a cheap region simply claims more —
//!       │                 skewed predicates cannot strand the scan behind
//!       │                 one overloaded worker. Each claimed morsel is
//!       │                 accumulated into a reusable per-worker
//!       │                 accumulator and compacted into a partial
//!       │                 *tagged by its morsel index*.
//!       │
//!       └─ ordered merge: partials are sorted by morsel index and merged
//!                         in that order — Dense by slot, Hash by
//!                         composite code — then finalized exactly like
//!                         the serial path. The float reduction tree is a
//!                         pure function of the data layout, never of
//!                         claim timing or thread count: a morsel run is
//!                         bit-for-bit reproducible across runs *and*
//!                         across parallel (≥ 2 worker) thread counts
//!                         (one worker degrades to the serial row-order
//!                         reduction), and identical to the serial scan
//!                         whenever measure sums are exactly
//!                         representable (what the equivalence proptests
//!                         assert on dyadic data).
//! ```
//!
//! [`SchedulingMode::Static`] keeps the previous behaviour —
//! `aggregate_parallel` splits the source into one contiguous shard per
//! worker, merged in worker order. It is retained as a comparison
//! baseline (benchmarks, the CI scheduling matrix) and as a fallback
//! knob; its float rounding is reproducible only for a *fixed* thread
//! count, whereas the morsel merge is thread-count-independent.
//!
//! # The ctx → claim → cancel pipeline
//!
//! Every scan carries a [`QueryCtx`] — the
//! query's lifecycle handle (cancellation token, optional deadline,
//! priority, per-query progress counters) threaded down from
//! `ZqlEngine::execute_ctx` through `Database::run_request_ctx` and
//! `EngineSnapshot::execute` into [`run_scheduled`]. Interactive callers
//! (sliders, sketch re-issues, `zv-server`'s session supersession)
//! cancel the ctx; the scan observes it at its natural boundaries:
//!
//! * **morsel scheduling** — the claim loop checks the ctx *between
//!   claims*: a worker that sees the flag stops claiming, the remaining
//!   morsels are never scanned, and the count of abandoned morsels flows
//!   into `ExecStats::morsels_cancelled`. With the default morsel size a
//!   cancel is observed within ~16 K rows of scan work per worker.
//! * **serial and static-shard scans** — checked between chunks
//!   ([`CHUNK_ROWS`] visited rows), so even a one-thread scan abandons
//!   work promptly.
//!
//! A cancelled scan returns
//! [`StorageError::Cancelled`](crate::table::StorageError)
//! and its partial accumulator state is dropped on the worker — partial
//! results **never** reach the merge, the caller, or the result cache
//! (`run_request_ctx` only inserts results of scans that ran to
//! completion). Deadlines are checked lazily at the same boundaries, so
//! a deadline-expired query surfaces within one chunk or claim. Rows
//! visited (including by abandoned partial scans) are recorded on the
//! ctx as the scan progresses, which is also what arms the
//! deterministic row-budget cancellation hook.
//!
//! Workers may also claim several morsels per cursor hit
//! ([`ParallelConfig::claim_batch`], `ZV_SCHED_CLAIM_BATCH`) to cut
//! cursor traffic under highly selective predicates; partials stay
//! tagged by *morsel* index, so the ordered merge — and therefore
//! bit-for-bit reproducibility — is unchanged by the batch size.
//!
//! # The failure & recovery pipeline
//!
//! Cancellation is the *cooperative* way a scan ends early; panics are
//! the uncooperative one, and an always-on interactive engine must
//! survive both. Every parallel worker closure (morsel and static) runs
//! inside `catch_unwind`:
//!
//! 1. **Contain** — a panicking worker (organic bug or injected by the
//!    [`crate::fault`] harness) is caught at the worker boundary. Under
//!    morsel scheduling it trips a shared abort flag, so siblings stop
//!    claiming at their next claim point exactly as they would for
//!    cancellation; under static sharding siblings simply finish their
//!    own shard. The thread pool never sees the unwind and stays
//!    healthy.
//! 2. **Fail cleanly** — the panicked worker's partial accumulator is
//!    dropped on the worker; nothing partial reaches the merge, the
//!    caller, or the result cache (`run_request_ctx` inserts only
//!    completed results — same guarantee cancellation relies on). The
//!    scan surfaces
//!    [`StorageError::WorkerPanicked`](crate::table::StorageError) with
//!    the lowest panicked morsel/shard attributed, and the engine's
//!    [`ExecStats`](crate::stats::ExecStats) records one
//!    `worker_panics`.
//! 3. **Retry / degrade** — `WorkerPanicked` (and `ResourceExhausted`)
//!    are *transient* ([`StorageError::is_transient`](crate::table::StorageError::is_transient));
//!    `zv-server`'s `SessionManager` retries them with bounded attempts
//!    and deterministic backoff, advancing the ctx's *fault epoch* so an
//!    injected fault pattern re-rolls per attempt. When parallel
//!    attempts keep failing the query is re-run serial
//!    (`QueryCtx::force_serial` caps it at one worker — the serial path
//!    has no fan-out and no injection points), and a breaker routes the
//!    next queries serial pre-emptively. Telemetry flows as
//!    `worker_panics` / `queries_retried` / `queries_degraded` through
//!    `ExecStats` → `StatsSnapshot` → `ExecReport` → `SessionStats`.
//!
//! Lock poisoning is the other half of panic fallout: shared locks in
//! this crate are acquired through the recover-or-rebuild helpers in
//! [`crate::fault`] (engines' table locks recover — every critical
//! section leaves an intact `Arc`; the result cache *rebuilds* its LRU,
//! whose intrusive links can be torn mid-insert) rather than unwrapped,
//! so a contained panic can never wedge the engine afterwards.
//!
//! # OptLevel × scheduling matrix
//!
//! The §5.2 batching ladder composes with this engine's parallelism along
//! two orthogonal axes — *where queries batch* and *where threads work* —
//! and within a query the [`SchedulingMode`] picks how row work is dealt:
//!
//! | OptLevel    | requests          | intra-query threads   | inter-query threads |
//! |-------------|-------------------|-----------------------|---------------------|
//! | `NoOpt`     | 1 per viz         | morsel / static scan  | — (1 query/request) |
//! | `IntraLine` | 1 per row         | morsel / static scan  | across the batch    |
//! | `IntraTask` | 1 per task prefix | morsel / static scan  | across the batch    |
//! | `InterTask` | fewest (lookahead)| morsel / static scan  | across the batch    |
//!
//! Inter-query fan-out happens in `Database::run_request`; intra-query
//! fan-out here. The pool's nesting guard ([`crate::parallel`]) ensures
//! whichever layer fans out first gets the hardware: multi-query requests
//! parallelize across queries (each query scanning serially), single-query
//! requests parallelize across row morsels (or static shards).
//!
//! The scheduling knob lives on [`ParallelConfig`] and can be forced
//! process-wide through the environment ([`ParallelConfig::from_env`],
//! `ZV_SCHED_MODE` / `ZV_SCHED_THREADS` / `ZV_SCHED_MIN_ROWS`) — CI's
//! scheduling matrix runs
//! the equivalence suites under `serial`, `static`, and `morsel` so a
//! scheduling bug cannot hide behind the default configuration.

use crate::column::{packed_delta, Chunked, CodeColumn, Coded, Column, IntColumn, SegRef};
use crate::lifecycle::QueryCtx;
use crate::parallel;
use crate::predicate::{Atom, CmpOp, Predicate};
use crate::query::{Agg, GroupSeries, ResultTable, SelectQuery, XSpec};
use crate::roaring::RoaringBitmap;
use crate::table::{StorageError, Table};
use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

// ---------------------------------------------------------------------
// Compiled predicates
// ---------------------------------------------------------------------

/// A predicate atom specialized against concrete column storage, so the
/// per-row check is branch-light (no string comparisons, no hash lookups).
/// Atoms over encoded columns hold the chunked store itself: the per-row
/// [`CAtom::eval`] decodes on demand, and the vectorized
/// `CAtom::and_mask` path evaluates sealed chunks in place (RLE runs
/// decided once per run, bit-packed lanes unpacked inside 64-lane word
/// kernels) with per-chunk min/max short-circuits.
pub enum CAtom<'a> {
    ConstBool(bool),
    CatEqCode {
        codes: &'a CodeColumn,
        code: u32,
    },
    CatNeqCode {
        codes: &'a CodeColumn,
        code: u32,
    },
    /// `IN` / `LIKE 'p%'` compile to a per-dictionary-code truth table.
    CatCodeSet {
        codes: &'a CodeColumn,
        member: Vec<bool>,
    },
    NumCmpI {
        vals: &'a IntColumn,
        op: CmpOp,
        value: f64,
    },
    NumCmpF {
        vals: &'a [f64],
        op: CmpOp,
        value: f64,
    },
    BetweenI {
        vals: &'a IntColumn,
        lo: f64,
        hi: f64,
    },
    BetweenF {
        vals: &'a [f64],
        lo: f64,
        hi: f64,
    },
}

impl CAtom<'_> {
    #[inline]
    pub fn eval(&self, row: usize) -> bool {
        match self {
            CAtom::ConstBool(b) => *b,
            CAtom::CatEqCode { codes, code } => codes.get(row) == *code,
            CAtom::CatNeqCode { codes, code } => codes.get(row) != *code,
            CAtom::CatCodeSet { codes, member } => member[codes.get(row) as usize],
            CAtom::NumCmpI { vals, op, value } => op.eval_f64(vals.get(row) as f64, *value),
            CAtom::NumCmpF { vals, op, value } => op.eval_f64(vals[row], *value),
            CAtom::BetweenI { vals, lo, hi } => {
                let v = vals.get(row) as f64;
                v >= *lo && v <= *hi
            }
            CAtom::BetweenF { vals, lo, hi } => vals[row] >= *lo && vals[row] <= *hi,
        }
    }

    /// AND this atom's truth over rows `start..end` into `mask` (bit `i`
    /// of `mask` ↔ row `start + i`). Sealed chunks are evaluated in
    /// place: chunk `(min, max)` stats decide whole chunks without
    /// touching data where possible, RLE runs are decided once per run,
    /// and plain/bit-packed payloads go through [`and_lanes`]'s 64-lane
    /// word kernel.
    fn and_mask(&self, start: usize, end: usize, mask: &mut [u64]) {
        match self {
            CAtom::ConstBool(true) => {}
            CAtom::ConstBool(false) => clear_bits(mask, 0, end - start),
            CAtom::CatEqCode { codes, code } => {
                let code = *code;
                and_mask_col(
                    codes,
                    start,
                    end,
                    mask,
                    |lo, hi| {
                        if code < lo || code > hi {
                            Some(false)
                        } else if lo == hi {
                            Some(true)
                        } else {
                            None
                        }
                    },
                    |v| v == code,
                );
            }
            CAtom::CatNeqCode { codes, code } => {
                let code = *code;
                and_mask_col(
                    codes,
                    start,
                    end,
                    mask,
                    |lo, hi| {
                        if code < lo || code > hi {
                            Some(true)
                        } else if lo == hi {
                            Some(false)
                        } else {
                            None
                        }
                    },
                    |v| v != code,
                );
            }
            CAtom::CatCodeSet { codes, member } => {
                and_mask_col(
                    codes,
                    start,
                    end,
                    mask,
                    |lo, hi| {
                        if lo == hi {
                            Some(member[lo as usize])
                        } else {
                            None
                        }
                    },
                    |v| member[v as usize],
                );
            }
            CAtom::NumCmpI { vals, op, value } => {
                let (op, value) = (*op, *value);
                and_mask_col(
                    vals,
                    start,
                    end,
                    mask,
                    // `as f64` is monotone over i64, so a chunk's cast
                    // values stay inside [lo as f64, hi as f64] and the
                    // endpoint verdicts bound the whole chunk.
                    |lo, hi| {
                        let (tl, th) =
                            (op.eval_f64(lo as f64, value), op.eval_f64(hi as f64, value));
                        if lo == hi {
                            return Some(tl);
                        }
                        match op {
                            CmpOp::Lt | CmpOp::Le => match (tl, th) {
                                (_, true) => Some(true),
                                (false, _) => Some(false),
                                _ => None,
                            },
                            CmpOp::Gt | CmpOp::Ge => match (tl, th) {
                                (true, _) => Some(true),
                                (_, false) => Some(false),
                                _ => None,
                            },
                            CmpOp::Eq => {
                                if value < lo as f64 || value > hi as f64 {
                                    Some(false)
                                } else {
                                    None
                                }
                            }
                            CmpOp::Neq => {
                                if value < lo as f64 || value > hi as f64 {
                                    Some(true)
                                } else {
                                    None
                                }
                            }
                        }
                    },
                    |v| op.eval_f64(v as f64, value),
                );
            }
            CAtom::NumCmpF { vals, op, value } => {
                let (op, value) = (*op, *value);
                and_lanes(mask, 0, end - start, |i| {
                    op.eval_f64(vals[start + i], value)
                });
            }
            CAtom::BetweenI { vals, lo, hi } => {
                let (plo, phi) = (*lo, *hi);
                and_mask_col(
                    vals,
                    start,
                    end,
                    mask,
                    |lo, hi| {
                        if (lo as f64) >= plo && (hi as f64) <= phi {
                            Some(true)
                        } else if (hi as f64) < plo || (lo as f64) > phi {
                            Some(false)
                        } else {
                            None
                        }
                    },
                    |v| {
                        let v = v as f64;
                        v >= plo && v <= phi
                    },
                );
            }
            CAtom::BetweenF { vals, lo, hi } => {
                let (plo, phi) = (*lo, *hi);
                and_lanes(mask, 0, end - start, |i| {
                    let v = vals[start + i];
                    v >= plo && v <= phi
                });
            }
        }
    }
}

/// Clear `len` bits of `mask` starting at bit `from`.
#[inline]
fn clear_bits(mask: &mut [u64], from: usize, len: usize) {
    if len == 0 {
        return;
    }
    let end = from + len;
    let (fw, lw) = (from >> 6, (end - 1) >> 6);
    let head = !0u64 << (from & 63);
    let tail = !0u64 >> (63 - ((end - 1) & 63));
    if fw == lw {
        mask[fw] &= !(head & tail);
    } else {
        mask[fw] &= !head;
        for w in &mut mask[fw + 1..lw] {
            *w = 0;
        }
        mask[lw] &= !tail;
    }
}

/// AND a per-lane test over bits `p0..p0 + len` of `mask`. The aligned
/// body builds each 64-bit verdict word in a branchless lane loop (the
/// u64-wide kernel the scan path vectorizes on) and ANDs it in with one
/// store; ragged edges go bit by bit. The test receives the lane index
/// relative to `p0`.
#[inline]
fn and_lanes(mask: &mut [u64], p0: usize, len: usize, mut test: impl FnMut(usize) -> bool) {
    let end = p0 + len;
    let mut p = p0;
    while p < end && (p & 63) != 0 {
        if !test(p - p0) {
            mask[p >> 6] &= !(1u64 << (p & 63));
        }
        p += 1;
    }
    while p + 64 <= end {
        let base = p - p0;
        let mut w = 0u64;
        for b in 0..64 {
            w |= (test(base + b) as u64) << b;
        }
        mask[p >> 6] &= w;
        p += 64;
    }
    while p < end {
        if !test(p - p0) {
            mask[p >> 6] &= !(1u64 << (p & 63));
        }
        p += 1;
    }
}

/// Walk the storage segments covering rows `start..end` of a chunked
/// column and AND a value test into `mask`. `stat` gives the whole-chunk
/// verdict from sealed `(min, max)` stats: `Some(true)` leaves the
/// chunk's bits untouched, `Some(false)` clears them, `None` evaluates
/// values — plain and packed payloads lane-wise, RLE payloads once per
/// run.
fn and_mask_col<T: Coded>(
    col: &Chunked<T>,
    start: usize,
    end: usize,
    mask: &mut [u64],
    stat: impl Fn(T, T) -> Option<bool>,
    test: impl Fn(T) -> bool,
) {
    let mut row = start;
    while row < end {
        let seg = col.segment(row);
        let stop = end.min(seg.base + seg.len);
        let (p0, n) = (row - start, stop - row);
        let base_off = row - seg.base;
        if let Some((lo, hi)) = seg.stat {
            match stat(lo, hi) {
                Some(true) => {
                    row = stop;
                    continue;
                }
                Some(false) => {
                    clear_bits(mask, p0, n);
                    row = stop;
                    continue;
                }
                None => {}
            }
        }
        match seg.data {
            SegRef::Plain(v) => and_lanes(mask, p0, n, |i| test(v[base_off + i])),
            SegRef::Packed { min, width, words } => {
                if width == 0 {
                    if !test(min) {
                        clear_bits(mask, p0, n);
                    }
                } else {
                    and_lanes(mask, p0, n, |i| {
                        test(T::from_delta(min, packed_delta(words, width, base_off + i)))
                    });
                }
            }
            SegRef::Rle(runs) => {
                let mut off = base_off;
                let mut i = runs.partition_point(|&(_, e)| (e as usize) <= off);
                while off < base_off + n {
                    let (v, run_end) = runs[i];
                    let run_stop = (run_end as usize).min(base_off + n);
                    if !test(v) {
                        clear_bits(mask, p0 + (off - base_off), run_stop - off);
                    }
                    off = run_stop;
                    i += 1;
                }
            }
        }
        row = stop;
    }
}

/// Reusable buffers for the vectorized mask evaluation: the AND
/// accumulator and (for OR predicates) the per-conjunction scratch word
/// array. Sized for [`CHUNK_ROWS`]-row windows.
pub struct MaskScratch {
    acc: Vec<u64>,
    tmp: Vec<u64>,
}

impl Default for MaskScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl MaskScratch {
    pub fn new() -> Self {
        MaskScratch {
            acc: vec![0; CHUNK_ROWS.div_ceil(64)],
            tmp: vec![0; CHUNK_ROWS.div_ceil(64)],
        }
    }
}

/// A whole predicate compiled for scanning.
pub enum CompiledPred<'a> {
    True,
    And(Vec<CAtom<'a>>),
    Or(Vec<Vec<CAtom<'a>>>),
}

impl CompiledPred<'_> {
    #[inline]
    pub fn eval(&self, row: usize) -> bool {
        match self {
            CompiledPred::True => true,
            CompiledPred::And(atoms) => atoms.iter().all(|a| a.eval(row)),
            CompiledPred::Or(disj) => disj.iter().any(|c| c.iter().all(|a| a.eval(row))),
        }
    }

    pub fn is_true(&self) -> bool {
        matches!(self, CompiledPred::True)
    }

    /// Vectorized range evaluation: append the qualifying row ids of
    /// `start..end` (at most [`CHUNK_ROWS`] rows) to `out`, in ascending
    /// order. Builds a bitmask window — all-ones ANDed down per atom for
    /// a conjunction, per-conjunction masks ORed together for a
    /// disjunction — then extracts set bits. Equivalent to calling
    /// [`CompiledPred::eval`] on every row, but sealed chunks are
    /// consumed in place via `CAtom::and_mask`.
    pub fn collect_range(
        &self,
        start: usize,
        end: usize,
        scratch: &mut MaskScratch,
        out: &mut Vec<u32>,
    ) {
        debug_assert!(end - start <= CHUNK_ROWS);
        let n = end - start;
        if n == 0 {
            return;
        }
        let words = n.div_ceil(64);
        let fill_ones = |m: &mut Vec<u64>| {
            m[..words].fill(!0u64);
            if n & 63 != 0 {
                m[words - 1] = !0u64 >> (64 - (n & 63));
            }
        };
        match self {
            CompiledPred::True => {
                out.extend((start..end).map(|r| r as u32));
                return;
            }
            CompiledPred::And(atoms) => {
                fill_ones(&mut scratch.acc);
                for a in atoms {
                    a.and_mask(start, end, &mut scratch.acc[..words]);
                }
            }
            CompiledPred::Or(disj) => {
                scratch.acc[..words].fill(0);
                for conj in disj {
                    fill_ones(&mut scratch.tmp);
                    for a in conj {
                        a.and_mask(start, end, &mut scratch.tmp[..words]);
                    }
                    for (acc, t) in scratch.acc[..words].iter_mut().zip(&scratch.tmp[..words]) {
                        *acc |= *t;
                    }
                }
            }
        }
        for (wi, &word) in scratch.acc[..words].iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push((start + (wi << 6) + b) as u32);
                w &= w - 1;
            }
        }
    }
}

pub fn compile_atom<'a>(table: &'a Table, atom: &Atom) -> Result<CAtom<'a>, StorageError> {
    atom.validate(table)?;
    let col = table.column(atom.column())?;
    Ok(match atom {
        Atom::CatEq { value, .. } => {
            let c = col.as_cat().unwrap();
            match c.code_of(value) {
                Some(code) => CAtom::CatEqCode {
                    codes: c.codes(),
                    code,
                },
                None => CAtom::ConstBool(false),
            }
        }
        Atom::CatNeq { value, .. } => {
            let c = col.as_cat().unwrap();
            match c.code_of(value) {
                Some(code) => CAtom::CatNeqCode {
                    codes: c.codes(),
                    code,
                },
                None => CAtom::ConstBool(true),
            }
        }
        Atom::CatIn { values, .. } => {
            let c = col.as_cat().unwrap();
            let mut member = vec![false; c.cardinality()];
            for v in values {
                if let Some(code) = c.code_of(v) {
                    member[code as usize] = true;
                }
            }
            CAtom::CatCodeSet {
                codes: c.codes(),
                member,
            }
        }
        Atom::StrPrefix { prefix, .. } => {
            let c = col.as_cat().unwrap();
            let member = c
                .dict()
                .iter()
                .map(|s| s.starts_with(prefix.as_str()))
                .collect();
            CAtom::CatCodeSet {
                codes: c.codes(),
                member,
            }
        }
        Atom::NumCmp { op, value, .. } => match col {
            Column::Int(v) => CAtom::NumCmpI {
                vals: v,
                op: *op,
                value: *value,
            },
            Column::Float(v) => CAtom::NumCmpF {
                vals: v,
                op: *op,
                value: *value,
            },
            Column::Cat(_) => unreachable!("validated"),
        },
        Atom::NumBetween { lo, hi, .. } => match col {
            Column::Int(v) => CAtom::BetweenI {
                vals: v,
                lo: *lo,
                hi: *hi,
            },
            Column::Float(v) => CAtom::BetweenF {
                vals: v,
                lo: *lo,
                hi: *hi,
            },
            Column::Cat(_) => unreachable!("validated"),
        },
    })
}

pub fn compile_pred<'a>(
    table: &'a Table,
    pred: &Predicate,
) -> Result<CompiledPred<'a>, StorageError> {
    Ok(match pred {
        Predicate::True => CompiledPred::True,
        Predicate::And(atoms) if atoms.is_empty() => CompiledPred::True,
        Predicate::And(atoms) => CompiledPred::And(
            atoms
                .iter()
                .map(|a| compile_atom(table, a))
                .collect::<Result<_, _>>()?,
        ),
        Predicate::Or(disj) => CompiledPred::Or(
            disj.iter()
                .map(|c| {
                    c.iter()
                        .map(|a| compile_atom(table, a))
                        .collect::<Result<_, _>>()
                })
                .collect::<Result<_, _>>()?,
        ),
    })
}

// ---------------------------------------------------------------------
// Row sources
// ---------------------------------------------------------------------

/// Rows handed to the aggregation kernel per batch. 4096 ids = 16 KiB of
/// row ids plus 32 KiB of codes — comfortably cache-resident alongside
/// the dimension columns being gathered.
pub const CHUNK_ROWS: usize = 4096;

/// Where qualifying rows come from.
pub enum RowSource<'a> {
    /// Every row (100% selectivity, no predicate work).
    All(usize),
    /// Rows pre-selected by bitmap index algebra.
    Bitmap(RoaringBitmap),
    /// Full scan with a compiled per-row filter.
    Filtered {
        n_rows: usize,
        pred: CompiledPred<'a>,
    },
    /// Bitmap candidates with a residual per-row filter (numeric atoms the
    /// bitmap index cannot answer).
    BitmapFiltered {
        rows: RoaringBitmap,
        pred: CompiledPred<'a>,
    },
    /// A contiguous row interval `[start, end)` with the query predicate
    /// applied as a residual — the incremental-view-maintenance delta
    /// scan over rows appended between two table versions.
    Range {
        start: usize,
        end: usize,
        pred: Option<CompiledPred<'a>>,
    },
}

impl RowSource<'_> {
    /// Visit qualifying rows in ascending order; returns rows *visited*
    /// (scanned), which may exceed rows qualifying.
    #[inline]
    pub fn for_each<F: FnMut(usize)>(&self, mut f: F) -> u64 {
        match self {
            RowSource::All(n) => {
                for r in 0..*n {
                    f(r);
                }
                *n as u64
            }
            RowSource::Bitmap(bm) => {
                bm.for_each(|r| f(r as usize));
                bm.len()
            }
            RowSource::Filtered { n_rows, pred } => {
                for r in 0..*n_rows {
                    if pred.eval(r) {
                        f(r);
                    }
                }
                *n_rows as u64
            }
            RowSource::BitmapFiltered { rows, pred } => {
                rows.for_each(|r| {
                    if pred.eval(r as usize) {
                        f(r as usize);
                    }
                });
                rows.len()
            }
            RowSource::Range { start, end, pred } => {
                for r in *start..*end {
                    if pred.as_ref().is_none_or(|p| p.eval(r)) {
                        f(r);
                    }
                }
                (*end - *start) as u64
            }
        }
    }

    /// Rows this source will *visit* — the work estimate the parallel
    /// routing threshold compares against.
    pub fn estimated_rows(&self) -> usize {
        match self {
            RowSource::All(n) => *n,
            RowSource::Bitmap(bm) => bm.len() as usize,
            RowSource::Filtered { n_rows, .. } => *n_rows,
            RowSource::BitmapFiltered { rows, .. } => rows.len() as usize,
            RowSource::Range { start, end, .. } => *end - *start,
        }
    }

    /// The row interval dimension statistics may be restricted to
    /// (see [`build_dim`]'s range-aware variant): a bounded range scan
    /// never encodes a row outside `[start, end)`, so its group-axis
    /// min/max/distinct passes can cover just the range instead of the
    /// whole column. `None` means "whole column" for every other source
    /// (a predicate-filtered scan may still touch any row).
    pub fn stat_rows(&self) -> Option<(usize, usize)> {
        match self {
            RowSource::Range { start, end, .. } => Some((*start, *end)),
            _ => None,
        }
    }

    /// Visit qualifying rows as ascending chunks of at most [`CHUNK_ROWS`]
    /// ids; returns rows visited (same contract as [`RowSource::for_each`]).
    /// One shared implementation with [`RowSource::for_each_chunk_ctx`]:
    /// a fresh (never-cancelled) ctx costs one relaxed load per chunk.
    pub fn for_each_chunk<F: FnMut(&[u32])>(&self, f: F) -> u64 {
        self.for_each_chunk_ctx(&QueryCtx::new(), f).0
    }

    /// Cancellable variant of [`RowSource::for_each_chunk`]: records
    /// progress on `ctx` and checks for cancellation every
    /// [`CHUNK_ROWS`] *visited* rows (not per emitted chunk, so highly
    /// selective filters still observe a cancel promptly). Returns rows
    /// visited and whether the scan ran to completion — `false` means
    /// the ctx was cancelled and the visit stopped early (a partial
    /// trailing chunk is discarded, never handed to `f`).
    pub fn for_each_chunk_ctx<F: FnMut(&[u32])>(&self, ctx: &QueryCtx, mut f: F) -> (u64, bool) {
        match self {
            RowSource::All(n) => scan_range_ctx(0, *n, None, ctx, f),
            RowSource::Filtered { n_rows, pred } => scan_range_ctx(0, *n_rows, Some(pred), ctx, f),
            RowSource::Range { start, end, pred } => {
                scan_range_ctx(*start, *end, pred.as_ref(), ctx, f)
            }
            RowSource::Bitmap(bm) => {
                let mut buf: Vec<u32> = Vec::with_capacity(CHUNK_ROWS);
                let mut visited = 0u64;
                let mut since = 0u64;
                for r in bm.iter() {
                    if since == CHUNK_ROWS as u64 {
                        ctx.record_scanned(since);
                        since = 0;
                        if ctx.is_cancelled() {
                            return (visited, false);
                        }
                    }
                    buf.push(r);
                    if buf.len() == CHUNK_ROWS {
                        f(&buf);
                        buf.clear();
                    }
                    visited += 1;
                    since += 1;
                }
                ctx.record_scanned(since);
                if !buf.is_empty() {
                    f(&buf);
                }
                (visited, true)
            }
            RowSource::BitmapFiltered { rows, pred } => {
                let mut buf: Vec<u32> = Vec::with_capacity(CHUNK_ROWS);
                let mut visited = 0u64;
                let mut since = 0u64;
                for r in rows.iter() {
                    if since == CHUNK_ROWS as u64 {
                        ctx.record_scanned(since);
                        since = 0;
                        if ctx.is_cancelled() {
                            return (visited, false);
                        }
                    }
                    if pred.eval(r as usize) {
                        buf.push(r);
                        if buf.len() == CHUNK_ROWS {
                            f(&buf);
                            buf.clear();
                        }
                    }
                    visited += 1;
                    since += 1;
                }
                ctx.record_scanned(since);
                if !buf.is_empty() {
                    f(&buf);
                }
                (visited, true)
            }
        }
    }
}

/// Cancellable chunked scan over a contiguous row range with an
/// optional residual filter: records visited rows on `ctx` and checks
/// for cancellation every [`CHUNK_ROWS`] visited rows. Returns rows
/// visited and whether the scan completed.
fn scan_range_ctx<F: FnMut(&[u32])>(
    start: usize,
    end: usize,
    pred: Option<&CompiledPred<'_>>,
    ctx: &QueryCtx,
    mut f: F,
) -> (u64, bool) {
    let mut buf: Vec<u32> = Vec::with_capacity(CHUNK_ROWS);
    match pred {
        None => {
            let mut r = start;
            while r < end {
                if ctx.is_cancelled() {
                    return ((r - start) as u64, false);
                }
                let c = (end - r).min(CHUNK_ROWS);
                buf.clear();
                buf.extend((r..r + c).map(|x| x as u32));
                f(&buf);
                ctx.record_scanned(c as u64);
                r += c;
            }
            ((end - start) as u64, true)
        }
        Some(p) if p.is_true() => scan_range_ctx(start, end, None, ctx, f),
        Some(p) => {
            // Vectorized filter: evaluate a CHUNK_ROWS-row mask window
            // per iteration (encoded chunks consumed in place — see
            // `CAtom::and_mask`) and emit the window's qualifying ids as
            // one chunk. Emitted chunk sizes differ from the row-at-a-
            // time path (which buffered to exactly CHUNK_ROWS ids), but
            // chunk boundaries are not observable in results: rows stay
            // ascending, group slots are first-seen ordered, and morsel
            // partials merge by index — bit-for-bit identical output.
            let mut scratch = MaskScratch::new();
            let mut r = start;
            while r < end {
                if ctx.is_cancelled() {
                    return ((r - start) as u64, false);
                }
                let c = (end - r).min(CHUNK_ROWS);
                buf.clear();
                p.collect_range(r, r + c, &mut scratch, &mut buf);
                if !buf.is_empty() {
                    f(&buf);
                }
                ctx.record_scanned(c as u64);
                r += c;
            }
            ((end - start) as u64, true)
        }
    }
}

/// Cancellable [`scan_ids`]: same ctx contract as [`scan_range_ctx`].
fn scan_ids_ctx<F: FnMut(&[u32])>(
    ids: &[u32],
    pred: Option<&CompiledPred<'_>>,
    ctx: &QueryCtx,
    mut f: F,
) -> (u64, bool) {
    match pred {
        None => {
            let mut done = 0usize;
            for chunk in ids.chunks(CHUNK_ROWS) {
                if ctx.is_cancelled() {
                    return (done as u64, false);
                }
                f(chunk);
                ctx.record_scanned(chunk.len() as u64);
                done += chunk.len();
            }
            (ids.len() as u64, true)
        }
        Some(p) if p.is_true() => scan_ids_ctx(ids, None, ctx, f),
        Some(p) => {
            let mut buf: Vec<u32> = Vec::with_capacity(CHUNK_ROWS);
            let mut since = 0u64;
            for (i, &r) in ids.iter().enumerate() {
                if since == CHUNK_ROWS as u64 {
                    ctx.record_scanned(since);
                    since = 0;
                    if ctx.is_cancelled() {
                        return (i as u64, false);
                    }
                }
                if p.eval(r as usize) {
                    buf.push(r);
                    if buf.len() == CHUNK_ROWS {
                        f(&buf);
                        buf.clear();
                    }
                }
                since += 1;
            }
            ctx.record_scanned(since);
            if !buf.is_empty() {
                f(&buf);
            }
            (ids.len() as u64, true)
        }
    }
}

// ---------------------------------------------------------------------
// Group-dimension encoders
// ---------------------------------------------------------------------

/// Per-row group-key extraction for one dimension, plus decoding back to
/// values for the finalize phase.
pub enum DimEncoder<'a> {
    /// Dictionary-encoded categorical column: the dict code *is* the key.
    Cat {
        codes: &'a CodeColumn,
        dict: &'a [String],
    },
    /// Integer column with a narrow value range: `code = v - min`.
    IntOffset {
        vals: &'a IntColumn,
        min: i64,
        card: usize,
    },
    /// Integer column with a wide range: code = rank in sorted distincts.
    IntRank {
        vals: &'a IntColumn,
        distinct: Vec<i64>,
    },
    /// Binned numeric axis: `code = floor(v/width) - min_bin`.
    BinnedI {
        vals: &'a IntColumn,
        width: f64,
        min_bin: i64,
        card: usize,
    },
    BinnedF {
        vals: &'a [f64],
        width: f64,
        min_bin: i64,
        card: usize,
    },
}

/// Walk the storage segments spanned by an ascending row-id chunk:
/// calls `f(i, j, seg)` for each maximal id subrange `rows[i..j]` that
/// falls inside one segment. The row-id contract of
/// [`RowSource::for_each_chunk`] (ascending ids) is what makes this a
/// forward walk — one segment lookup plus one partition point per
/// segment touched, not per row.
#[inline]
fn for_spans<'a, T: Coded>(
    col: &'a Chunked<T>,
    rows: &[u32],
    mut f: impl FnMut(usize, usize, crate::column::Segment<'a, T>),
) {
    let mut i = 0;
    while i < rows.len() {
        let seg = col.segment(rows[i] as usize);
        let seg_end = seg.base + seg.len;
        let j = i + rows[i..].partition_point(|&r| (r as usize) < seg_end);
        f(i, j, seg);
        i = j;
    }
}

/// Gather `code_of(value) * stride` into `out` for each id in `rows`,
/// straight from the encoded segments: plain slices index directly,
/// bit-packed chunks unpack lanes from the packed words (constant
/// chunks hoist one code for the whole span), and RLE runs compute
/// `code_of` once per run — the run cursor only ever moves forward
/// because ids are ascending.
#[inline]
fn gather_acc<T: Coded>(
    col: &Chunked<T>,
    rows: &[u32],
    stride: u64,
    out: &mut [u64],
    mut code_of: impl FnMut(T) -> u64,
) {
    for_spans(col, rows, |i, j, seg| match seg.data {
        SegRef::Plain(v) => {
            for k in i..j {
                out[k] += code_of(v[rows[k] as usize - seg.base]) * stride;
            }
        }
        SegRef::Packed { min, width, words } => {
            if width == 0 {
                let add = code_of(min) * stride;
                for o in &mut out[i..j] {
                    *o += add;
                }
            } else {
                for k in i..j {
                    let d = packed_delta(words, width, rows[k] as usize - seg.base);
                    out[k] += code_of(T::from_delta(min, d)) * stride;
                }
            }
        }
        SegRef::Rle(runs) => {
            let mut ri =
                runs.partition_point(|&(_, e)| (e as usize) <= rows[i] as usize - seg.base);
            let mut cached = code_of(runs[ri].0) * stride;
            for k in i..j {
                let off = rows[k] as usize - seg.base;
                if (runs[ri].1 as usize) <= off {
                    while (runs[ri].1 as usize) <= off {
                        ri += 1;
                    }
                    cached = code_of(runs[ri].0) * stride;
                }
                out[k] += cached;
            }
        }
    });
}

impl DimEncoder<'_> {
    #[inline]
    pub fn encode(&self, row: usize) -> u64 {
        match self {
            DimEncoder::Cat { codes, .. } => codes.get(row) as u64,
            DimEncoder::IntOffset { vals, min, .. } => (vals.get(row) - min) as u64,
            DimEncoder::IntRank { vals, distinct } => distinct
                .binary_search(&vals.get(row))
                .expect("value seen during build")
                as u64,
            DimEncoder::BinnedI {
                vals,
                width,
                min_bin,
                ..
            } => ((vals.get(row) as f64 / width).floor() as i64 - min_bin) as u64,
            DimEncoder::BinnedF {
                vals,
                width,
                min_bin,
                ..
            } => ((vals[row] / width).floor() as i64 - min_bin) as u64,
        }
    }

    /// Columnar batch encode: add `encode(row) * stride` into `out` for
    /// every row of the chunk. One variant dispatch per chunk per
    /// dimension instead of one per row — the inner loops are tight
    /// gather-multiply-accumulate passes that read encoded chunks in
    /// place (`gather_acc`): packed words are unpacked lane by lane
    /// without materializing the chunk, and per-value transforms (the
    /// rank binary search, the binned floor-divide) collapse to once per
    /// RLE run.
    #[inline]
    pub fn encode_acc(&self, rows: &[u32], stride: u64, out: &mut [u64]) {
        debug_assert_eq!(rows.len(), out.len());
        match self {
            DimEncoder::Cat { codes, .. } => {
                gather_acc(codes, rows, stride, out, |v| v as u64);
            }
            DimEncoder::IntOffset { vals, min, .. } => {
                let min = *min;
                gather_acc(vals, rows, stride, out, |v| (v - min) as u64);
            }
            DimEncoder::IntRank { vals, distinct } => {
                gather_acc(vals, rows, stride, out, |v| {
                    distinct.binary_search(&v).expect("value seen during build") as u64
                });
            }
            DimEncoder::BinnedI {
                vals,
                width,
                min_bin,
                ..
            } => {
                let (width, min_bin) = (*width, *min_bin);
                gather_acc(vals, rows, stride, out, |v| {
                    ((v as f64 / width).floor() as i64 - min_bin) as u64
                });
            }
            DimEncoder::BinnedF {
                vals,
                width,
                min_bin,
                ..
            } => {
                for (o, &r) in out.iter_mut().zip(rows) {
                    let code = ((vals[r as usize] / width).floor() as i64 - min_bin) as u64;
                    *o += code * stride;
                }
            }
        }
    }

    pub fn cardinality(&self) -> usize {
        match self {
            DimEncoder::Cat { dict, .. } => dict.len(),
            DimEncoder::IntOffset { card, .. } => *card,
            DimEncoder::IntRank { distinct, .. } => distinct.len(),
            DimEncoder::BinnedI { card, .. } | DimEncoder::BinnedF { card, .. } => *card,
        }
    }

    pub fn decode(&self, code: u64) -> Value {
        match self {
            DimEncoder::Cat { dict, .. } => Value::Str(dict[code as usize].clone()),
            DimEncoder::IntOffset { min, .. } => Value::Int(min + code as i64),
            DimEncoder::IntRank { distinct, .. } => Value::Int(distinct[code as usize]),
            DimEncoder::BinnedI { width, min_bin, .. } => {
                Value::Float((min_bin + code as i64) as f64 * width)
            }
            DimEncoder::BinnedF { width, min_bin, .. } => {
                Value::Float((min_bin + code as i64) as f64 * width)
            }
        }
    }
}

/// Widest value range an integer column may span before we switch from
/// offset encoding (O(1), dense) to rank encoding (binary search).
const INT_OFFSET_MAX_RANGE: i64 = 1 << 22;

pub fn build_dim<'a>(table: &'a Table, spec: &XSpec) -> Result<DimEncoder<'a>, StorageError> {
    build_dim_over(table, spec, None)
}

/// [`build_dim`] with the dimension *statistics* (min/max, distinct
/// values) computed over only the row range `rows` instead of the whole
/// column. Row *indexing* still uses the full column slice, so codes
/// are valid for any row inside the range. This is what makes the IVM
/// delta scan O(delta): a [`RowSource::Range`] visits only `[start,
/// end)`, and an encoder whose stats cover exactly those rows encodes
/// them correctly — the full-column min/max pass (~the whole table for
/// a 1k-row delta) is skipped. Results are decoded to values before any
/// cross-version merge, so a range-local encoding is sound.
fn build_dim_over<'a>(
    table: &'a Table,
    spec: &XSpec,
    rows: Option<(usize, usize)>,
) -> Result<DimEncoder<'a>, StorageError> {
    let col = table.column(&spec.col)?;
    let stat = |len: usize| -> (usize, usize) {
        match rows {
            Some((s, e)) => (s.min(len), e.min(len)),
            None => (0, len),
        }
    };
    if let Some(width) = spec.bin {
        if width <= 0.0 {
            return Err(StorageError::Malformed(format!(
                "bin width must be positive: {width}"
            )));
        }
        return match col {
            Column::Int(v) => {
                let (s, e) = stat(v.len());
                if s >= e {
                    return Ok(DimEncoder::BinnedI {
                        vals: v,
                        width,
                        min_bin: 0,
                        card: 0,
                    });
                }
                // Chunk-stat fold (O(chunks + edge rows)) — the delta
                // scan's O(delta) append guarantee depends on this.
                let (lo, hi) = v.minmax(s, e).expect("nonempty range");
                let min_bin = (lo as f64 / width).floor() as i64;
                let max_bin = (hi as f64 / width).floor() as i64;
                Ok(DimEncoder::BinnedI {
                    vals: v,
                    width,
                    min_bin,
                    card: (max_bin - min_bin + 1).max(1) as usize,
                })
            }
            Column::Float(v) => {
                let (s, e) = stat(v.len());
                if s >= e {
                    return Ok(DimEncoder::BinnedF {
                        vals: v,
                        width,
                        min_bin: 0,
                        card: 0,
                    });
                }
                let (lo, hi) = minmax_f(&v[s..e]);
                let min_bin = (lo / width).floor() as i64;
                let max_bin = (hi / width).floor() as i64;
                Ok(DimEncoder::BinnedF {
                    vals: v,
                    width,
                    min_bin,
                    card: (max_bin - min_bin + 1).max(1) as usize,
                })
            }
            Column::Cat(_) => Err(StorageError::TypeMismatch(format!(
                "cannot bin categorical column {}",
                spec.col
            ))),
        };
    }
    match col {
        // Dictionary cardinality is a stored property, not a column
        // pass — the full dict stays correct (and cheap) for any range.
        Column::Cat(c) => Ok(DimEncoder::Cat {
            codes: c.codes(),
            dict: c.dict(),
        }),
        Column::Int(v) => {
            let (s, e) = stat(v.len());
            if s >= e {
                return Ok(DimEncoder::IntOffset {
                    vals: v,
                    min: 0,
                    card: 0,
                });
            }
            let (lo, hi) = v.minmax(s, e).expect("nonempty range");
            if hi - lo < INT_OFFSET_MAX_RANGE {
                Ok(DimEncoder::IntOffset {
                    vals: v,
                    min: lo,
                    card: (hi - lo + 1) as usize,
                })
            } else {
                let mut distinct = Vec::with_capacity(e - s);
                v.for_each_range(s, e, |_, x| distinct.push(x));
                distinct.sort_unstable();
                distinct.dedup();
                Ok(DimEncoder::IntRank { vals: v, distinct })
            }
        }
        Column::Float(_) => Err(StorageError::TypeMismatch(format!(
            "float column {} must be binned to be used as a group axis",
            spec.col
        ))),
    }
}

fn minmax_f(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

// ---------------------------------------------------------------------
// Aggregation kernel
// ---------------------------------------------------------------------

/// Numeric measure access.
#[derive(Clone, Copy)]
pub enum YCol<'a> {
    I(&'a IntColumn),
    F(&'a [f64]),
    /// COUNT(*) needs no column.
    Unit,
}

impl YCol<'_> {
    #[inline]
    fn get(&self, row: usize) -> f64 {
        match self {
            YCol::I(v) => v.get(row) as f64,
            YCol::F(v) => v[row],
            YCol::Unit => 1.0,
        }
    }
}

/// How group slots are located during accumulation. The choice is the
/// mechanism behind the Figure 7.5 crossover: dense arrays win at high
/// selectivity with many groups; hash lookup is cardinality-oblivious.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupStrategy {
    Dense,
    Hash,
}

/// How row work is dealt to the workers of one parallel aggregation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulingMode {
    /// One contiguous shard per worker, fixed up front
    /// ([`aggregate_parallel`]). Reproducible for a fixed thread count;
    /// under skewed predicates a worker can finish early and idle.
    Static,
    /// Workers claim fixed-size chunk-aligned morsels off a shared atomic
    /// cursor ([`aggregate_morsel`]); partials are merged in morsel-index
    /// order, so results are reproducible across runs *and* across all
    /// parallel (≥ 2 worker) thread counts — a one-worker run degrades
    /// to the serial row-order reduction, which can differ in the last
    /// ulp on inexact measures. The default.
    #[default]
    Morsel,
}

/// Tuning for the parallel scan. Shared by both engines' configs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for a single aggregation; `0` = all hardware
    /// threads.
    pub threads: usize,
    /// Sources expected to visit fewer rows than this stay serial: shard
    /// setup + merge costs a few tens of microseconds, which only pays
    /// for itself on bulk scans.
    pub min_parallel_rows: usize,
    /// How row work is distributed once a scan goes parallel.
    pub sched: SchedulingMode,
    /// Rows per morsel under [`SchedulingMode::Morsel`]. The default
    /// ([`MORSEL_ROWS`]) is the production sweet spot; tests and the CI
    /// scheduling matrix shrink it so small tables still split into
    /// many claimable units.
    pub morsel_rows: usize,
    /// Morsels a worker claims per cursor hit under
    /// [`SchedulingMode::Morsel`] (default 1). Raising it cuts atomic
    /// cursor traffic when morsels are nearly free to scan (highly
    /// selective predicates) at the cost of coarser load balancing and
    /// cancellation granularity. Partials stay tagged per *morsel*, so
    /// the ordered merge — and bit-for-bit reproducibility — does not
    /// depend on the batch size.
    pub claim_batch: usize,
    /// Deterministic fault injection for the parallel scan and the
    /// result cache ([`crate::fault`]). Disabled by default (a single
    /// branch per injection point); armed by chaos tests and the CI
    /// chaos leg via `ZV_FAULT_SEED` / `ZV_FAULT_RATE` /
    /// `ZV_FAULT_DELAY_US` (read by [`ParallelConfig::from_env`]).
    pub fault: crate::fault::FaultSpec,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 0,
            min_parallel_rows: 1 << 16,
            sched: SchedulingMode::Morsel,
            morsel_rows: MORSEL_ROWS,
            claim_batch: 1,
            fault: crate::fault::FaultSpec::disabled(),
        }
    }
}

impl ParallelConfig {
    /// Threads an aggregation over `rows` visited rows should use.
    pub fn threads_for(&self, rows: usize) -> usize {
        if rows < self.min_parallel_rows {
            1
        } else {
            parallel::effective_threads(self.threads)
        }
    }

    /// The default config with the process environment applied — what
    /// both engines' default configs use, so CI (and operators) can force
    /// a scheduling configuration without touching code:
    ///
    /// * `ZV_SCHED_MODE` ∈ {`serial`, `static`, `morsel`} — `serial`
    ///   pins the scan to one thread; `static`/`morsel` select the
    ///   parallel scheduler (only — the serial gate below is a separate
    ///   knob, so pinning a scheduler never changes *when* scans go
    ///   parallel).
    /// * `ZV_SCHED_THREADS=N` — explicit worker count (overrides auto).
    /// * `ZV_SCHED_MIN_ROWS=N` — the `min_parallel_rows` serial gate.
    ///   CI's scheduling matrix sets `0` so even tiny test tables
    ///   exercise the forced machinery.
    /// * `ZV_SCHED_MORSEL_ROWS=N` (N ≥ 1) — morsel size. The matrix
    ///   shrinks it so the same tiny tables split into *many* morsels
    ///   and genuinely exercise claiming and the ordered merge.
    /// * `ZV_SCHED_CLAIM_BATCH=N` (N ≥ 1) — morsels claimed per cursor
    ///   hit ([`ParallelConfig::claim_batch`]).
    ///
    /// Invalid values **panic** with the offending value: a typo'd CI
    /// matrix leg must fail loudly, not silently run the default
    /// configuration and pass vacuously. Empty / whitespace-only values
    /// count as unset (matrices pass `""` for non-overridden rows).
    /// The fault-injection knobs (`ZV_FAULT_SEED` / `ZV_FAULT_RATE` /
    /// `ZV_FAULT_DELAY_US`) are read here too, via
    /// [`crate::fault::FaultSpec::from_env`], so the CI chaos leg arms
    /// injection the same way the scheduling matrix forces schedulers.
    pub fn from_env() -> Self {
        let mut cfg = Self::from_env_spec(
            std::env::var("ZV_SCHED_MODE").ok().as_deref(),
            std::env::var("ZV_SCHED_THREADS").ok().as_deref(),
            std::env::var("ZV_SCHED_MIN_ROWS").ok().as_deref(),
            std::env::var("ZV_SCHED_MORSEL_ROWS").ok().as_deref(),
            std::env::var("ZV_SCHED_CLAIM_BATCH").ok().as_deref(),
        );
        cfg.fault = crate::fault::FaultSpec::from_env();
        cfg
    }

    /// Testable core of [`ParallelConfig::from_env`].
    pub fn from_env_spec(
        mode: Option<&str>,
        threads: Option<&str>,
        min_rows: Option<&str>,
        morsel_rows: Option<&str>,
        claim_batch: Option<&str>,
    ) -> Self {
        fn unset(v: Option<&str>) -> Option<&str> {
            v.map(str::trim).filter(|s| !s.is_empty())
        }
        let mut cfg = ParallelConfig::default();
        if let Some(mode) = unset(mode) {
            match mode.to_ascii_lowercase().as_str() {
                "serial" => {
                    cfg.threads = 1;
                    cfg.min_parallel_rows = usize::MAX;
                }
                "static" => cfg.sched = SchedulingMode::Static,
                "morsel" => cfg.sched = SchedulingMode::Morsel,
                other => panic!(
                    "ZV_SCHED_MODE={other:?} not recognized (expected serial, static, or morsel)"
                ),
            }
        }
        if let Some(t) = unset(threads) {
            cfg.threads = t
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("ZV_SCHED_THREADS={t:?} is not a thread count"));
        }
        if let Some(m) = unset(min_rows) {
            cfg.min_parallel_rows = m
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("ZV_SCHED_MIN_ROWS={m:?} is not a row count"));
        }
        if let Some(m) = unset(morsel_rows) {
            cfg.morsel_rows = match m.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => panic!("ZV_SCHED_MORSEL_ROWS={m:?} is not a positive row count"),
            };
        }
        if let Some(b) = unset(claim_batch) {
            cfg.claim_batch = match b.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => panic!("ZV_SCHED_CLAIM_BATCH={b:?} is not a positive morsel count"),
            };
        }
        cfg
    }
}

/// Cap on `total_slots × workers` for parallel dense accumulation: each
/// worker owns a private dense array, so very wide key spaces shed
/// workers rather than exhaust memory (2²² slots ≈ 100 MiB of partials
/// in the worst all-aggregates case).
const DENSE_PARALLEL_SLOT_BUDGET: u64 = 1 << 22;

struct Accumulators {
    n_ys: usize,
    sums: Vec<f64>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
    counts: Vec<u64>,
    need_minmax: bool,
}

impl Accumulators {
    fn new(slots: usize, n_ys: usize, need_minmax: bool) -> Self {
        Accumulators {
            n_ys,
            sums: vec![0.0; slots * n_ys],
            mins: if need_minmax {
                vec![f64::INFINITY; slots * n_ys]
            } else {
                Vec::new()
            },
            maxs: if need_minmax {
                vec![f64::NEG_INFINITY; slots * n_ys]
            } else {
                Vec::new()
            },
            counts: vec![0; slots],
            need_minmax,
        }
    }

    #[inline]
    fn n_slots(&self) -> usize {
        self.counts.len()
    }

    /// Drop every slot but keep the allocations (growable accumulators
    /// reused morsel-to-morsel).
    #[inline]
    fn clear(&mut self) {
        self.sums.clear();
        self.mins.clear();
        self.maxs.clear();
        self.counts.clear();
    }

    /// Pre-size for up to `extra` additional slots (one reservation per
    /// chunk instead of one reallocation check per new group).
    #[inline]
    fn reserve(&mut self, extra: usize) {
        self.sums.reserve(extra * self.n_ys);
        if self.need_minmax {
            self.mins.reserve(extra * self.n_ys);
            self.maxs.reserve(extra * self.n_ys);
        }
        self.counts.reserve(extra);
    }

    #[inline]
    fn grow_one(&mut self) -> usize {
        let slot = self.counts.len();
        for _ in 0..self.n_ys {
            self.sums.push(0.0);
            if self.need_minmax {
                self.mins.push(f64::INFINITY);
                self.maxs.push(f64::NEG_INFINITY);
            }
        }
        self.counts.push(0);
        slot
    }

    #[inline]
    fn update(&mut self, slot: usize, ys: &[YCol<'_>], row: usize) {
        self.counts[slot] += 1;
        let base = slot * self.n_ys;
        for (j, y) in ys.iter().enumerate() {
            let v = y.get(row);
            self.sums[base + j] += v;
            if self.need_minmax {
                if v < self.mins[base + j] {
                    self.mins[base + j] = v;
                }
                if v > self.maxs[base + j] {
                    self.maxs[base + j] = v;
                }
            }
        }
    }

    /// Fold another partial's slot into one of ours (the shard-merge
    /// step). Exact for counts and min/max; float sums merge in worker
    /// order, so a fixed shard split keeps results reproducible.
    #[inline]
    fn merge_slot(&mut self, slot: usize, other: &Accumulators, other_slot: usize) {
        debug_assert_eq!(self.n_ys, other.n_ys);
        self.counts[slot] += other.counts[other_slot];
        let base = slot * self.n_ys;
        let obase = other_slot * self.n_ys;
        for j in 0..self.n_ys {
            self.sums[base + j] += other.sums[obase + j];
            if self.need_minmax {
                if other.mins[obase + j] < self.mins[base + j] {
                    self.mins[base + j] = other.mins[obase + j];
                }
                if other.maxs[obase + j] > self.maxs[base + j] {
                    self.maxs[base + j] = other.maxs[obase + j];
                }
            }
        }
    }

    fn finalize(&self, slot: usize, aggs: &[Agg]) -> Vec<f64> {
        let base = slot * self.n_ys;
        let n = self.counts[slot] as f64;
        aggs.iter()
            .enumerate()
            .map(|(j, agg)| match agg {
                Agg::Sum => self.sums[base + j],
                Agg::Avg => self.sums[base + j] / n,
                Agg::Count => n,
                Agg::Min => self.mins[base + j],
                Agg::Max => self.maxs[base + j],
            })
            .collect()
    }
}

/// Everything derived from `(table, query)` that the scan needs:
/// dimension encoders (z₁..z_k then x), composite-key strides, measure
/// columns, and aggregate specs.
struct GroupPlan<'a> {
    dims: Vec<DimEncoder<'a>>,
    strides: Vec<u64>,
    total: u64,
    ys: Vec<YCol<'a>>,
    aggs: Vec<Agg>,
    need_minmax: bool,
}

fn build_plan<'a>(
    table: &'a Table,
    query: &SelectQuery,
    rows: Option<(usize, usize)>,
) -> Result<GroupPlan<'a>, StorageError> {
    // Dimension order: z₁..z_k, then x innermost (stride 1).
    let mut dims: Vec<DimEncoder<'a>> = Vec::with_capacity(query.zs.len() + 1);
    for z in &query.zs {
        dims.push(build_dim_over(table, &XSpec::raw(z.clone()), rows)?);
    }
    dims.push(build_dim_over(table, &query.x, rows)?);

    let mut ys: Vec<YCol<'a>> = Vec::with_capacity(query.ys.len());
    let mut aggs: Vec<Agg> = Vec::with_capacity(query.ys.len());
    for y in &query.ys {
        let ycol = if y.agg == Agg::Count && y.col == "*" {
            YCol::Unit
        } else {
            match table.column(&y.col)? {
                Column::Int(v) => YCol::I(v),
                Column::Float(v) => YCol::F(v),
                Column::Cat(_) => {
                    if y.agg == Agg::Count {
                        YCol::Unit
                    } else {
                        return Err(StorageError::TypeMismatch(format!(
                            "cannot {} categorical column {}",
                            y.agg, y.col
                        )));
                    }
                }
            }
        };
        ys.push(ycol);
        aggs.push(y.agg);
    }
    let need_minmax = aggs.iter().any(|a| matches!(a, Agg::Min | Agg::Max));

    // Strides for the composite code (x last → stride 1).
    let mut strides = vec![1u64; dims.len()];
    let mut total: u128 = 1;
    for i in (0..dims.len()).rev() {
        strides[i] = total as u64;
        total *= dims[i].cardinality().max(1) as u128;
    }
    if total > u64::MAX as u128 {
        return Err(StorageError::Malformed(
            "group key space exceeds u64".into(),
        ));
    }

    Ok(GroupPlan {
        dims,
        strides,
        total: total as u64,
        ys,
        aggs,
        need_minmax,
    })
}

/// One worker's (or the serial scan's) accumulation state: a reusable
/// code buffer plus strategy-specific slot storage.
struct ChunkAccumulator<'p, 'a> {
    plan: &'p GroupPlan<'a>,
    strategy: GroupStrategy,
    acc: Accumulators,
    /// Hash strategy only: composite code → slot.
    slot_of: HashMap<u64, u32>,
    codes: Vec<u64>,
}

/// Encode one chunk's composite codes into `codes` (shared by the
/// chunk-at-a-time and morsel accumulators).
#[inline]
fn encode_chunk(plan: &GroupPlan<'_>, rows: &[u32], codes: &mut Vec<u64>) {
    codes.clear();
    codes.resize(rows.len(), 0);
    for (d, s) in plan.dims.iter().zip(&plan.strides) {
        d.encode_acc(rows, *s, codes);
    }
}

/// Hash-strategy accumulation of one encoded chunk (shared by the
/// chunk-at-a-time and morsel accumulators): reserve for the worst case
/// (all-new groups) once per chunk; the entry API makes the common case
/// one probe.
#[inline]
fn hash_consume(
    acc: &mut Accumulators,
    slot_of: &mut HashMap<u64, u32>,
    codes: &[u64],
    ys: &[YCol<'_>],
    rows: &[u32],
) {
    slot_of.reserve(rows.len());
    acc.reserve(rows.len());
    for (i, &row) in rows.iter().enumerate() {
        let slot = match slot_of.entry(codes[i]) {
            Entry::Occupied(e) => *e.get() as usize,
            Entry::Vacant(e) => {
                let s = acc.grow_one();
                e.insert(s as u32);
                s
            }
        };
        acc.update(slot, ys, row as usize);
    }
}

impl<'p, 'a> ChunkAccumulator<'p, 'a> {
    fn new(plan: &'p GroupPlan<'a>, strategy: GroupStrategy) -> Self {
        let n_ys = plan.ys.len().max(1);
        let acc = match strategy {
            GroupStrategy::Dense => Accumulators::new(plan.total as usize, n_ys, plan.need_minmax),
            GroupStrategy::Hash => Accumulators::new(0, n_ys, plan.need_minmax),
        };
        ChunkAccumulator {
            plan,
            strategy,
            acc,
            slot_of: HashMap::new(),
            codes: Vec::with_capacity(CHUNK_ROWS),
        }
    }

    /// Accumulate one chunk of qualifying row ids.
    fn consume(&mut self, rows: &[u32]) {
        encode_chunk(self.plan, rows, &mut self.codes);
        match self.strategy {
            GroupStrategy::Dense => {
                for (i, &row) in rows.iter().enumerate() {
                    self.acc
                        .update(self.codes[i] as usize, &self.plan.ys, row as usize);
                }
            }
            GroupStrategy::Hash => hash_consume(
                &mut self.acc,
                &mut self.slot_of,
                &self.codes,
                &self.plan.ys,
                rows,
            ),
        }
    }

    /// Close out into the shared finalize representation: accumulators
    /// plus ascending occupied composite codes (and, for Hash, the slot
    /// of each occupied code).
    fn into_parts(self) -> (DenseOrHash, Vec<u64>) {
        match self.strategy {
            GroupStrategy::Dense => {
                let occupied = (0..self.plan.total)
                    .filter(|&code| self.acc.counts[code as usize] > 0)
                    .collect();
                (DenseOrHash::Dense(self.acc), occupied)
            }
            GroupStrategy::Hash => {
                let mut pairs: Vec<(u64, u32)> = self.slot_of.into_iter().collect();
                pairs.sort_unstable();
                let slots: Vec<u32> = pairs.iter().map(|&(_, s)| s).collect();
                let occupied = pairs.into_iter().map(|(c, _)| c).collect();
                (DenseOrHash::Hash(self.acc, slots), occupied)
            }
        }
    }
}

enum DenseOrHash {
    Dense(Accumulators),
    /// Accumulators plus the slot of each occupied code (aligned with the
    /// ascending `occupied` list).
    Hash(Accumulators, Vec<u32>),
}

/// Run the grouped aggregation for `query` over `source`, using the given
/// strategy. Returns the ordered result and the number of rows visited.
pub fn aggregate(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
) -> Result<(ResultTable, u64), StorageError> {
    aggregate_ctx(table, query, source, strategy, &QueryCtx::new())
}

/// Cancellable [`aggregate`]: the serial scan checks `ctx` between
/// chunks and returns [`StorageError::Cancelled`] (discarding partial
/// accumulator state) once the ctx is cancelled — explicitly, by
/// deadline, or by row budget.
pub fn aggregate_ctx(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
    ctx: &QueryCtx,
) -> Result<(ResultTable, u64), StorageError> {
    let plan = build_plan(table, query, source.stat_rows())?;
    ctx.check()?;
    let mut acc = ChunkAccumulator::new(&plan, strategy);
    let (scanned, completed) = source.for_each_chunk_ctx(ctx, |rows| acc.consume(rows));
    if !completed || ctx.is_cancelled() {
        return Err(StorageError::Cancelled);
    }
    let (acc, occupied) = acc.into_parts();
    Ok((finalize_result(query, &plan, &acc, &occupied), scanned))
}

/// A row source lowered to a unit-addressable form the schedulers can
/// split: range sources keep their row interval, bitmap sources
/// materialize their ids once and split the id array.
enum ShardInput<'s, 'a> {
    Rows {
        /// First physical row of the interval; unit `u` maps to row
        /// `base + u` (non-zero only for [`RowSource::Range`]).
        base: usize,
        n: usize,
        pred: Option<&'s CompiledPred<'a>>,
    },
    Ids {
        ids: Vec<u32>,
        pred: Option<&'s CompiledPred<'a>>,
    },
}

impl<'s, 'a> ShardInput<'s, 'a> {
    fn of(source: &'s RowSource<'a>) -> Self {
        match source {
            RowSource::All(n) => ShardInput::Rows {
                base: 0,
                n: *n,
                pred: None,
            },
            RowSource::Filtered { n_rows, pred } => ShardInput::Rows {
                base: 0,
                n: *n_rows,
                pred: Some(pred),
            },
            RowSource::Bitmap(bm) => ShardInput::Ids {
                ids: bm.to_vec(),
                pred: None,
            },
            RowSource::BitmapFiltered { rows, pred } => ShardInput::Ids {
                ids: rows.to_vec(),
                pred: Some(pred),
            },
            RowSource::Range { start, end, pred } => ShardInput::Rows {
                base: *start,
                n: *end - *start,
                pred: pred.as_ref(),
            },
        }
    }

    fn n_units(&self) -> usize {
        match self {
            ShardInput::Rows { n, .. } => *n,
            ShardInput::Ids { ids, .. } => ids.len(),
        }
    }

    /// Scan units `start..end`, feeding chunks of qualifying row ids to
    /// `f`. Checks `ctx` between chunks (and records visited rows on
    /// it); returns rows visited and whether the scan completed.
    fn scan_ctx<F: FnMut(&[u32])>(
        &self,
        start: usize,
        end: usize,
        ctx: &QueryCtx,
        f: F,
    ) -> (u64, bool) {
        match self {
            ShardInput::Rows { base, pred, .. } => {
                scan_range_ctx(base + start, base + end, *pred, ctx, f)
            }
            ShardInput::Ids { ids, pred } => scan_ids_ctx(&ids[start..end], *pred, ctx, f),
        }
    }
}

/// Statically sharded variant of [`aggregate`]: splits the source into
/// contiguous per-worker shards, accumulates per-worker partials on the
/// shared pool, and merges them (Dense by slot, Hash by composite code)
/// before the common finalize. `threads == 0` means auto. Produces the
/// same `ResultTable` and scanned count as the serial path — bit-for-bit
/// when measure sums are exactly representable, and within float merge
/// rounding otherwise. Kept as the [`SchedulingMode::Static`] baseline;
/// the default scheduler is [`aggregate_morsel`].
pub fn aggregate_parallel(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
    threads: usize,
) -> Result<(ResultTable, u64), StorageError> {
    aggregate_parallel_ctx(table, query, source, strategy, threads, &QueryCtx::new())
}

/// Cancellable [`aggregate_parallel`]: each shard's scan checks `ctx`
/// between chunks; a cancelled scan abandons its remaining shards and
/// returns [`StorageError::Cancelled`] without merging any partials.
pub fn aggregate_parallel_ctx(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
    threads: usize,
    ctx: &QueryCtx,
) -> Result<(ResultTable, u64), StorageError> {
    static_run(
        table,
        query,
        source,
        strategy,
        threads,
        crate::fault::FaultSpec::disabled(),
        None,
        ctx,
    )
}

/// Shared implementation behind the static-shard entry points. Worker
/// closures run inside `catch_unwind`: a panicking shard (organic or
/// injected via `fault`) is contained, its partial is dropped, and the
/// scan surfaces [`StorageError::WorkerPanicked`] — siblings finish
/// their own shard (static sharding has no claim loop to abort), the
/// pool stays healthy, and nothing reaches the merge or the cache.
#[allow(clippy::too_many_arguments)]
fn static_run(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
    threads: usize,
    fault: crate::fault::FaultSpec,
    stats: Option<&crate::stats::ExecStats>,
    ctx: &QueryCtx,
) -> Result<(ResultTable, u64), StorageError> {
    let plan = build_plan(table, query, source.stat_rows())?;
    ctx.check()?;
    let mut workers = parallel::effective_threads(threads);
    if strategy == GroupStrategy::Dense {
        // Each dense worker owns `total` slots; shed workers before
        // exhausting memory on very wide key spaces.
        let cap = (DENSE_PARALLEL_SLOT_BUDGET / plan.total.max(1)).max(1) as usize;
        workers = workers.min(cap);
    }

    // `estimated_rows` equals the unit count of every source shape, so
    // the serial fallback is decided *before* a bitmap source pays the
    // cost of materializing its id array.
    let n_units = source.estimated_rows();
    workers = workers.min(n_units.max(1));
    if workers <= 1 {
        // The serial path is the degrade refuge: no fan-out, no
        // injection points.
        let mut acc = ChunkAccumulator::new(&plan, strategy);
        let (scanned, completed) = source.for_each_chunk_ctx(ctx, |rows| acc.consume(rows));
        if !completed || ctx.is_cancelled() {
            return Err(StorageError::Cancelled);
        }
        let (acc, occupied) = acc.into_parts();
        return Ok((finalize_result(query, &plan, &acc, &occupied), scanned));
    }
    let input = ShardInput::of(source);
    debug_assert_eq!(input.n_units(), n_units);
    let shards = parallel::split_ranges(n_units, workers);
    let epoch = ctx.fault_epoch();
    if fault.fires(
        crate::fault::FaultPoint::WorkerSpawn,
        shards.len() as u64,
        epoch,
    ) {
        return Err(StorageError::ResourceExhausted(format!(
            "injected worker-spawn failure ({} shards)",
            shards.len()
        )));
    }

    type ShardOut = Result<(ChunkAccumulatorParts, u64), (u64, String)>;
    let partials: Vec<ShardOut> = parallel::run_workers(shards.len(), |w| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if fault.fires(crate::fault::FaultPoint::MorselDelay, w as u64, epoch) {
                fault.delay();
            }
            if fault.fires(crate::fault::FaultPoint::ChunkScanPanic, w as u64, epoch) {
                crate::fault::injected_panic(w as u64);
            }
            let (start, end) = shards[w];
            let mut acc = ChunkAccumulator::new(&plan, strategy);
            let (visited, _completed) = input.scan_ctx(start, end, ctx, |rows| acc.consume(rows));
            (
                ChunkAccumulatorParts {
                    acc: acc.acc,
                    slot_of: acc.slot_of,
                },
                visited,
            )
        }))
        .map_err(|payload| {
            (
                w as u64,
                crate::fault::panic_payload_string(payload.as_ref()),
            )
        })
    });

    if ctx.is_cancelled() {
        return Err(StorageError::Cancelled);
    }
    if let Some((morsel, payload)) = partials
        .iter()
        .filter_map(|r| r.as_ref().err())
        .min_by_key(|(w, _)| *w)
    {
        // Panicked shards drop their partials on the worker; the whole
        // scan fails cleanly with the lowest failing shard attributed.
        if let Some(s) = stats {
            s.record_worker_panic();
        }
        return Err(StorageError::WorkerPanicked {
            payload: payload.clone(),
            morsel: *morsel,
        });
    }
    let ok = partials.into_iter().map(|r| match r {
        Ok(p) => p,
        Err(_) => unreachable!("panicked shards returned above"),
    });
    let (parts, visits): (Vec<_>, Vec<u64>) = ok.unzip();
    let scanned: u64 = visits.iter().sum();
    let (acc, occupied) = merge_partials(&plan, strategy, parts.into_iter());
    Ok((finalize_result(query, &plan, &acc, &occupied), scanned))
}

/// A worker's raw partial state, sent back for merging.
struct ChunkAccumulatorParts {
    acc: Accumulators,
    slot_of: HashMap<u64, u32>,
}

/// Merge per-worker partials in worker order: Dense by slot index, Hash
/// by composite code (the global slot table grows in first-seen order,
/// then finalize sorts by code as usual).
fn merge_partials(
    plan: &GroupPlan<'_>,
    strategy: GroupStrategy,
    partials: impl Iterator<Item = ChunkAccumulatorParts>,
) -> (DenseOrHash, Vec<u64>) {
    let n_ys = plan.ys.len().max(1);
    match strategy {
        GroupStrategy::Dense => {
            let mut global: Option<Accumulators> = None;
            for part in partials {
                match &mut global {
                    None => global = Some(part.acc),
                    Some(g) => {
                        for slot in 0..part.acc.n_slots() {
                            if part.acc.counts[slot] > 0 {
                                g.merge_slot(slot, &part.acc, slot);
                            }
                        }
                    }
                }
            }
            let g = global
                .unwrap_or_else(|| Accumulators::new(plan.total as usize, n_ys, plan.need_minmax));
            let occupied = (0..plan.total)
                .filter(|&code| g.counts[code as usize] > 0)
                .collect();
            (DenseOrHash::Dense(g), occupied)
        }
        GroupStrategy::Hash => {
            let mut g = Accumulators::new(0, n_ys, plan.need_minmax);
            let mut slot_of: HashMap<u64, u32> = HashMap::new();
            for part in partials {
                // Deterministic iteration: visit this partial's codes in
                // ascending order so global slot assignment (and float
                // merge order) does not depend on HashMap iteration.
                let mut pairs: Vec<(u64, u32)> = part.slot_of.into_iter().collect();
                pairs.sort_unstable();
                slot_of.reserve(pairs.len());
                g.reserve(pairs.len());
                for (code, local_slot) in pairs {
                    let slot = match slot_of.entry(code) {
                        Entry::Occupied(e) => *e.get() as usize,
                        Entry::Vacant(e) => {
                            let s = g.grow_one();
                            e.insert(s as u32);
                            s
                        }
                    };
                    g.merge_slot(slot, &part.acc, local_slot as usize);
                }
            }
            let mut pairs: Vec<(u64, u32)> = slot_of.into_iter().collect();
            pairs.sort_unstable();
            let slots: Vec<u32> = pairs.iter().map(|&(_, s)| s).collect();
            let occupied = pairs.into_iter().map(|(c, _)| c).collect();
            (DenseOrHash::Hash(g, slots), occupied)
        }
    }
}

// ---------------------------------------------------------------------
// Morsel-driven scheduling
// ---------------------------------------------------------------------

/// Rows per morsel: a multiple of [`CHUNK_ROWS`] (so morsel boundaries
/// are chunk boundaries and the chunked scan never splits a buffer),
/// small enough that a 1M-row scan yields ~60 claimable units for the
/// skew balancing to work with, large enough that the atomic claim and
/// per-morsel compaction are noise against the row work.
pub const MORSEL_ROWS: usize = 4 * CHUNK_ROWS;

/// Telemetry from one morsel-scheduled aggregation ([`aggregate_morsel`]):
/// how evenly the claiming spread work across the pool.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MorselMetrics {
    /// Workers that participated in the scan.
    pub workers: usize,
    /// Morsels the source was carved into.
    pub morsels: u64,
    /// Morsels claimed *beyond* an even `ceil(morsels / workers)` share,
    /// summed over workers — work the dynamic claiming moved off
    /// overloaded workers (a static split would have stranded it).
    pub steals: u64,
    /// Workers that claimed no morsel at all (the scan finished before
    /// they reached the cursor).
    pub idle_workers: u64,
    /// Morsels claimed by each worker.
    pub per_worker: Vec<u64>,
}

/// One morsel's accumulated groups in compact, code-tagged form: slot
/// `j` of `acc` holds the aggregates of composite code `codes[j]`
/// (ascending). The representation is strategy-independent, so the
/// ordered merge is too.
struct MorselPartial {
    codes: Vec<u64>,
    acc: Accumulators,
}

/// A worker's reusable accumulation state for morsel claiming: like
/// [`ChunkAccumulator`], plus Dense-mode touch tracking so each morsel
/// can be compacted and the accumulator reset in O(groups touched)
/// rather than O(total key space).
struct MorselAccumulator<'p, 'a> {
    plan: &'p GroupPlan<'a>,
    strategy: GroupStrategy,
    acc: Accumulators,
    /// Hash strategy only: composite code → slot.
    slot_of: HashMap<u64, u32>,
    /// Dense strategy only: codes whose count went 0 → 1 in the current
    /// morsel.
    touched: Vec<u64>,
    codes: Vec<u64>,
}

impl<'p, 'a> MorselAccumulator<'p, 'a> {
    fn new(plan: &'p GroupPlan<'a>, strategy: GroupStrategy) -> Self {
        let n_ys = plan.ys.len().max(1);
        let acc = match strategy {
            GroupStrategy::Dense => Accumulators::new(plan.total as usize, n_ys, plan.need_minmax),
            GroupStrategy::Hash => Accumulators::new(0, n_ys, plan.need_minmax),
        };
        MorselAccumulator {
            plan,
            strategy,
            acc,
            slot_of: HashMap::new(),
            touched: Vec::new(),
            codes: Vec::with_capacity(CHUNK_ROWS),
        }
    }

    /// Accumulate one chunk of qualifying row ids of the current morsel.
    fn consume(&mut self, rows: &[u32]) {
        encode_chunk(self.plan, rows, &mut self.codes);
        match self.strategy {
            GroupStrategy::Dense => {
                // Like the chunk accumulator's Dense arm, plus 0 → 1
                // touch tracking so the morsel compacts in O(groups).
                for (i, &row) in rows.iter().enumerate() {
                    let code = self.codes[i] as usize;
                    if self.acc.counts[code] == 0 {
                        self.touched.push(code as u64);
                    }
                    self.acc.update(code, &self.plan.ys, row as usize);
                }
            }
            GroupStrategy::Hash => hash_consume(
                &mut self.acc,
                &mut self.slot_of,
                &self.codes,
                &self.plan.ys,
                rows,
            ),
        }
    }

    /// Compact the finished morsel into a code-tagged partial and reset
    /// the accumulator for the next claim. Only slots the morsel actually
    /// touched are copied and cleared.
    fn take_partial(&mut self) -> MorselPartial {
        let n_ys = self.plan.ys.len().max(1);
        match self.strategy {
            GroupStrategy::Dense => {
                self.touched.sort_unstable();
                let mut compact = Accumulators::new(0, n_ys, self.plan.need_minmax);
                compact.reserve(self.touched.len());
                for &code in &self.touched {
                    let slot = compact.grow_one();
                    compact.merge_slot(slot, &self.acc, code as usize);
                    let base = code as usize * n_ys;
                    self.acc.counts[code as usize] = 0;
                    for j in 0..n_ys {
                        self.acc.sums[base + j] = 0.0;
                        if self.acc.need_minmax {
                            self.acc.mins[base + j] = f64::INFINITY;
                            self.acc.maxs[base + j] = f64::NEG_INFINITY;
                        }
                    }
                }
                MorselPartial {
                    codes: std::mem::take(&mut self.touched),
                    acc: compact,
                }
            }
            GroupStrategy::Hash => {
                let mut pairs: Vec<(u64, u32)> = self.slot_of.drain().collect();
                pairs.sort_unstable();
                let mut compact = Accumulators::new(0, n_ys, self.plan.need_minmax);
                compact.reserve(pairs.len());
                let mut codes = Vec::with_capacity(pairs.len());
                for (code, slot) in pairs {
                    let s = compact.grow_one();
                    compact.merge_slot(s, &self.acc, slot as usize);
                    codes.push(code);
                }
                // Keep the worker accumulator's capacity for the next
                // claim; only the compacted copy leaves this function.
                self.acc.clear();
                MorselPartial {
                    codes,
                    acc: compact,
                }
            }
        }
    }
}

/// Merge code-tagged morsel partials **in the order given** (callers
/// sort by morsel index first): Dense scatters into the full key space
/// by slot, Hash grows a global slot table by composite code. Because
/// every partial tags its values with composite codes, each code's float
/// reduction order is exactly the morsel-index order — independent of
/// which worker produced which partial.
fn merge_morsel_partials(
    plan: &GroupPlan<'_>,
    strategy: GroupStrategy,
    partials: impl Iterator<Item = MorselPartial>,
) -> (DenseOrHash, Vec<u64>) {
    let n_ys = plan.ys.len().max(1);
    match strategy {
        GroupStrategy::Dense => {
            let mut g = Accumulators::new(plan.total as usize, n_ys, plan.need_minmax);
            for part in partials {
                for (j, &code) in part.codes.iter().enumerate() {
                    g.merge_slot(code as usize, &part.acc, j);
                }
            }
            let occupied = (0..plan.total)
                .filter(|&code| g.counts[code as usize] > 0)
                .collect();
            (DenseOrHash::Dense(g), occupied)
        }
        GroupStrategy::Hash => {
            let mut g = Accumulators::new(0, n_ys, plan.need_minmax);
            let mut slot_of: HashMap<u64, u32> = HashMap::new();
            for part in partials {
                slot_of.reserve(part.codes.len());
                g.reserve(part.codes.len());
                for (j, &code) in part.codes.iter().enumerate() {
                    let slot = match slot_of.entry(code) {
                        Entry::Occupied(e) => *e.get() as usize,
                        Entry::Vacant(e) => {
                            let s = g.grow_one();
                            e.insert(s as u32);
                            s
                        }
                    };
                    g.merge_slot(slot, &part.acc, j);
                }
            }
            let mut pairs: Vec<(u64, u32)> = slot_of.into_iter().collect();
            pairs.sort_unstable();
            let slots: Vec<u32> = pairs.iter().map(|&(_, s)| s).collect();
            let occupied = pairs.into_iter().map(|(c, _)| c).collect();
            (DenseOrHash::Hash(g, slots), occupied)
        }
    }
}

/// Morsel-scheduled variant of [`aggregate`] — the default parallel path
/// ([`SchedulingMode::Morsel`]). Workers pull fixed-size, chunk-aligned
/// morsels off a shared atomic cursor, so a skew-heavy region of the
/// table is absorbed by whichever workers are free instead of stranding
/// one static shard; per-morsel partials are compacted, tagged by morsel
/// index, and merged in index order, so the result (including float
/// rounding) is reproducible across runs and across parallel (≥ 2
/// worker) thread counts — one worker degrades to the serial row-order
/// reduction — and identical to the serial path whenever measure sums
/// are exactly representable. `threads == 0` means auto. Returns the
/// ordered result,
/// rows visited, and claim telemetry (`None` when the scan degenerated
/// to serial).
pub fn aggregate_morsel(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
    threads: usize,
) -> Result<(ResultTable, u64, Option<MorselMetrics>), StorageError> {
    aggregate_morsel_sized(table, query, source, strategy, threads, MORSEL_ROWS)
}

/// [`aggregate_morsel`] with an explicit morsel size — a hook for tests
/// and benchmarks that need many morsels out of small inputs (claiming
/// and the ordered merge are size-independent; [`MORSEL_ROWS`] is purely
/// the production perf sweet spot).
pub fn aggregate_morsel_sized(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
    threads: usize,
    morsel_rows: usize,
) -> Result<(ResultTable, u64, Option<MorselMetrics>), StorageError> {
    aggregate_morsel_ctx(
        table,
        query,
        source,
        strategy,
        threads,
        morsel_rows,
        1,
        &QueryCtx::new(),
    )
}

/// Fully parameterized morsel aggregation: explicit morsel size, claim
/// batch, and lifecycle ctx. Workers check `ctx` **between claims** (the
/// scheduler's cancellation point) and, with `claim_batch > 1`, grab
/// several consecutive morsels per cursor hit; partials remain tagged by
/// morsel index so the ordered merge is identical for every batch size.
/// A cancelled scan returns [`StorageError::Cancelled`], recording the
/// abandoned morsel count on the ctx.
#[allow(clippy::too_many_arguments)]
pub fn aggregate_morsel_ctx(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
    threads: usize,
    morsel_rows: usize,
    claim_batch: usize,
    ctx: &QueryCtx,
) -> Result<(ResultTable, u64, Option<MorselMetrics>), StorageError> {
    morsel_run(
        table,
        query,
        source,
        strategy,
        threads,
        morsel_rows,
        claim_batch,
        crate::fault::FaultSpec::disabled(),
        None,
        ctx,
    )
}

/// Shared implementation behind the morsel entry points; `stats` (when
/// engine-routed via [`run_scheduled`]) receives the cancelled-morsel
/// and worker-panic telemetry, which must be recorded even though such
/// runs return `Err` and therefore cannot hand back a [`MorselMetrics`].
///
/// Each morsel scan runs inside `catch_unwind`: a panicking worker
/// (organic or injected via `fault`) trips a shared abort flag so
/// siblings stop claiming, its partial accumulator is dropped on the
/// worker, and the scan surfaces [`StorageError::WorkerPanicked`] with
/// the lowest panicked morsel attributed — the pool stays healthy and
/// nothing reaches the merge or the result cache.
#[allow(clippy::too_many_arguments)]
fn morsel_run(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
    threads: usize,
    morsel_rows: usize,
    claim_batch: usize,
    fault: crate::fault::FaultSpec,
    stats: Option<&crate::stats::ExecStats>,
    ctx: &QueryCtx,
) -> Result<(ResultTable, u64, Option<MorselMetrics>), StorageError> {
    assert!(morsel_rows >= 1, "morsel size must be positive");
    assert!(claim_batch >= 1, "claim batch must be positive");
    let plan = build_plan(table, query, source.stat_rows())?;
    ctx.check()?;
    let mut workers = parallel::effective_threads(threads);
    if strategy == GroupStrategy::Dense {
        // Each dense worker owns `total` slots; shed workers before
        // exhausting memory on very wide key spaces.
        let cap = (DENSE_PARALLEL_SLOT_BUDGET / plan.total.max(1)).max(1) as usize;
        workers = workers.min(cap);
    }
    // `estimated_rows` equals the unit count of every source shape, so
    // the serial fallback is decided *before* a bitmap source pays the
    // cost of materializing its id array.
    let n_units = source.estimated_rows();
    let n_morsels = n_units.div_ceil(morsel_rows);
    workers = workers.min(n_morsels.max(1));
    if workers <= 1 {
        let mut acc = ChunkAccumulator::new(&plan, strategy);
        let (scanned, completed) = source.for_each_chunk_ctx(ctx, |rows| acc.consume(rows));
        if !completed || ctx.is_cancelled() {
            return Err(StorageError::Cancelled);
        }
        let (acc, occupied) = acc.into_parts();
        return Ok((
            finalize_result(query, &plan, &acc, &occupied),
            scanned,
            None,
        ));
    }
    let input = ShardInput::of(source);
    debug_assert_eq!(input.n_units(), n_units);
    let epoch = ctx.fault_epoch();
    if fault.fires(
        crate::fault::FaultPoint::WorkerSpawn,
        n_morsels as u64,
        epoch,
    ) {
        return Err(StorageError::ResourceExhausted(format!(
            "injected worker-spawn failure ({n_morsels} morsels)"
        )));
    }

    let cursor = AtomicUsize::new(0);
    // Set by the first worker whose morsel scan panics: siblings stop
    // claiming at their next claim point, same as cancellation.
    let abort = AtomicBool::new(false);
    type WorkerOut = (Vec<(usize, MorselPartial)>, u64, Option<(u64, String)>);
    let outputs: Vec<WorkerOut> = parallel::run_workers(workers, |_| {
        let mut acc = MorselAccumulator::new(&plan, strategy);
        let mut out = Vec::new();
        let mut visited = 0u64;
        let mut panicked: Option<(u64, String)> = None;
        'claims: loop {
            // The claim point doubles as the cancellation/abort point: a
            // worker that sees either flag stops claiming, leaving the
            // remaining morsels unscanned.
            if abort.load(Ordering::Relaxed) || ctx.is_cancelled() {
                break;
            }
            let m0 = cursor.fetch_add(claim_batch, Ordering::Relaxed);
            if m0 >= n_morsels {
                break;
            }
            for m in m0..(m0 + claim_batch).min(n_morsels) {
                let start = m * morsel_rows;
                let end = ((m + 1) * morsel_rows).min(n_units);
                // `scan_ctx` checks the ctx between chunks *inside* the
                // claimed morsel (and records scanned rows as it goes),
                // so injected per-morsel delays or oversized morsels
                // cannot stretch cancel latency past one chunk.
                let scan = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if fault.fires(crate::fault::FaultPoint::MorselDelay, m as u64, epoch) {
                        fault.delay();
                    }
                    if fault.fires(crate::fault::FaultPoint::ChunkScanPanic, m as u64, epoch) {
                        crate::fault::injected_panic(m as u64);
                    }
                    input.scan_ctx(start, end, ctx, |rows| acc.consume(rows))
                }));
                match scan {
                    Ok((v, completed)) => {
                        visited += v;
                        if !completed {
                            // Cancelled mid-morsel: the partial is
                            // dropped and the morsel stays unaccounted
                            // (it joins the abandoned count below).
                            break 'claims;
                        }
                        ctx.record_morsel_claimed();
                        out.push((m, acc.take_partial()));
                    }
                    Err(payload) => {
                        // Contained worker panic: the accumulator state
                        // is suspect, so this worker contributes nothing
                        // further; siblings see `abort` at their next
                        // claim point.
                        abort.store(true, Ordering::Relaxed);
                        panicked = Some((
                            m as u64,
                            crate::fault::panic_payload_string(payload.as_ref()),
                        ));
                        break 'claims;
                    }
                }
            }
        }
        (out, visited, panicked)
    });

    let per_worker: Vec<u64> = outputs.iter().map(|(o, _, _)| o.len() as u64).collect();
    let scanned: u64 = outputs.iter().map(|(_, v, _)| *v).sum();
    if ctx.is_cancelled() {
        // Partial accumulations are dropped here — they never reach the
        // merge, the caller, or the result cache.
        let abandoned = (n_morsels as u64).saturating_sub(per_worker.iter().sum::<u64>());
        ctx.record_morsels_cancelled(abandoned);
        if let Some(s) = stats {
            s.record_morsels_cancelled(abandoned);
        }
        return Err(StorageError::Cancelled);
    }
    if let Some((morsel, payload)) = outputs
        .iter()
        .filter_map(|(_, _, p)| p.as_ref())
        .min_by_key(|(m, _)| *m)
    {
        // One failed scan attempt regardless of how many workers
        // panicked before the abort flag propagated; attribution goes to
        // the lowest panicked morsel for determinism.
        if let Some(s) = stats {
            s.record_worker_panic();
        }
        return Err(StorageError::WorkerPanicked {
            payload: payload.clone(),
            morsel: *morsel,
        });
    }
    let fair = (n_morsels as u64).div_ceil(workers as u64);
    let metrics = MorselMetrics {
        workers,
        morsels: n_morsels as u64,
        steals: per_worker.iter().map(|&c| c.saturating_sub(fair)).sum(),
        idle_workers: per_worker.iter().filter(|&&c| c == 0).count() as u64,
        per_worker,
    };

    let mut tagged: Vec<(usize, MorselPartial)> =
        outputs.into_iter().flat_map(|(o, _, _)| o).collect();
    tagged.sort_unstable_by_key(|&(m, _)| m);
    let (acc, occupied) =
        merge_morsel_partials(&plan, strategy, tagged.into_iter().map(|(_, p)| p));
    Ok((
        finalize_result(query, &plan, &acc, &occupied),
        scanned,
        Some(metrics),
    ))
}

/// Engine-facing dispatcher: run the aggregation with `threads` workers
/// under `cfg.sched` (serial when `threads <= 1`), recording morsel
/// claim telemetry into `stats` and observing `ctx` at each scheduler's
/// cancellation point (between chunks for serial/static, between claims
/// for morsel). Both engines' pinned snapshots route their scans through
/// here.
#[allow(clippy::too_many_arguments)]
pub fn run_scheduled(
    table: &Table,
    query: &SelectQuery,
    source: &RowSource<'_>,
    strategy: GroupStrategy,
    threads: usize,
    cfg: &ParallelConfig,
    stats: &crate::stats::ExecStats,
    ctx: &QueryCtx,
) -> Result<(ResultTable, u64), StorageError> {
    if threads <= 1 {
        return aggregate_ctx(table, query, source, strategy, ctx);
    }
    match cfg.sched {
        SchedulingMode::Static => static_run(
            table,
            query,
            source,
            strategy,
            threads,
            cfg.fault,
            Some(stats),
            ctx,
        ),
        SchedulingMode::Morsel => {
            let (rt, scanned, metrics) = morsel_run(
                table,
                query,
                source,
                strategy,
                threads,
                cfg.morsel_rows,
                cfg.claim_batch,
                cfg.fault,
                Some(stats),
                ctx,
            )?;
            if let Some(m) = &metrics {
                stats.record_morsel(m);
            }
            Ok((rt, scanned))
        }
    }
}

/// Decode composite codes, group consecutive rows sharing the same
/// z-prefix, and sort by decoded values — shared by the serial and
/// sharded paths.
fn finalize_result(
    query: &SelectQuery,
    plan: &GroupPlan<'_>,
    acc: &DenseOrHash,
    occupied: &[u64],
) -> ResultTable {
    let mut result = ResultTable {
        z_cols: query.zs.clone(),
        groups: Vec::new(),
    };
    let n_z = query.zs.len();
    let mut current_key: Option<Vec<Value>> = None;
    let mut cur_z_codes: Vec<u64> = Vec::new();
    let mut xs: Vec<Value> = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); query.ys.len()];

    let flush = |result: &mut ResultTable,
                 key: Option<Vec<Value>>,
                 xs: &mut Vec<Value>,
                 series: &mut Vec<Vec<f64>>| {
        if let Some(k) = key {
            result.groups.push(GroupSeries {
                key: k,
                xs: std::mem::take(xs),
                ys: series.iter_mut().map(std::mem::take).collect(),
            });
        }
    };

    for (i, &code) in occupied.iter().enumerate() {
        let mut rem = code;
        let mut parts = Vec::with_capacity(plan.dims.len());
        for s in &plan.strides {
            parts.push(rem / s);
            rem %= s;
        }
        let z_codes = &parts[..n_z];
        if current_key.is_none() || cur_z_codes != z_codes {
            flush(&mut result, current_key.take(), &mut xs, &mut series);
            cur_z_codes = z_codes.to_vec();
            current_key = Some(
                z_codes
                    .iter()
                    .zip(&plan.dims[..n_z])
                    .map(|(&c, d)| d.decode(c))
                    .collect(),
            );
            series = vec![Vec::new(); query.ys.len()];
        }
        xs.push(plan.dims[n_z].decode(parts[n_z]));
        let vals = match acc {
            DenseOrHash::Dense(a) => a.finalize(code as usize, &plan.aggs),
            DenseOrHash::Hash(a, slots) => a.finalize(slots[i] as usize, &plan.aggs),
        };
        for (j, v) in vals.into_iter().enumerate() {
            series[j].push(v);
        }
    }
    flush(&mut result, current_key.take(), &mut xs, &mut series);

    // Composite-code order already sorts by encoded codes; re-sort groups
    // by decoded key so ordering matches ORDER BY over *values* (dict
    // codes are first-seen order, not lexicographic).
    result.groups.sort_by(|a, b| a.key.cmp(&b.key));
    for g in &mut result.groups {
        // xs within a group come out in code order; IntOffset/Binned codes
        // are value-ordered already, Cat and IntRank may not be.
        let mut idx: Vec<usize> = (0..g.xs.len()).collect();
        idx.sort_by(|&i, &j| g.xs[i].cmp(&g.xs[j]));
        if idx.iter().enumerate().any(|(i, &j)| i != j) {
            g.xs = idx.iter().map(|&i| g.xs[i].clone()).collect();
            g.ys =
                g.ys.iter()
                    .map(|s| idx.iter().map(|&i| s[i]).collect())
                    .collect();
        }
    }

    result
}

/// Pick a strategy: dense when the composite key space is small enough
/// that the accumulator arrays stay cache-resident relative to the rows
/// being scanned.
pub fn choose_strategy(total_groups: u128, dense_limit: u128) -> GroupStrategy {
    if total_groups <= dense_limit {
        GroupStrategy::Dense
    } else {
        GroupStrategy::Hash
    }
}

/// Total composite-key cardinality for a query (used for strategy choice).
pub fn group_space(table: &Table, query: &SelectQuery) -> Result<u128, StorageError> {
    group_space_over(table, query, None)
}

/// [`group_space`] with dimension statistics restricted to a row range,
/// so sub-range scans (the IVM delta path) pay for the rows they visit,
/// not the whole column.
pub fn group_space_over(
    table: &Table,
    query: &SelectQuery,
    rows: Option<(usize, usize)>,
) -> Result<u128, StorageError> {
    let mut total: u128 = 1;
    for z in &query.zs {
        total *= build_dim_over(table, &XSpec::raw(z.clone()), rows)?
            .cardinality()
            .max(1) as u128;
    }
    total *= build_dim_over(table, &query.x, rows)?.cardinality().max(1) as u128;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::YSpec;
    use crate::table::{Field, Schema, TableBuilder};
    use crate::value::DataType;

    fn sales_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("location", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        let rows = [
            (2014, "chair", "US", 10.0),
            (2014, "chair", "US", 5.0),
            (2015, "chair", "US", 20.0),
            (2014, "desk", "US", 7.0),
            (2015, "desk", "UK", 9.0),
            (2015, "chair", "UK", 11.0),
        ];
        for (y, p, l, s) in rows {
            b.push_row(vec![
                Value::Int(y),
                Value::str(p),
                Value::str(l),
                Value::Float(s),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn run(q: &SelectQuery, strategy: GroupStrategy) -> ResultTable {
        let t = sales_table();
        let src = RowSource::All(t.num_rows());
        let (mut rt, scanned) = aggregate(&t, q, &src, strategy).unwrap();
        assert_eq!(scanned, 6);
        // the sharded path must agree even on tiny inputs
        let (par, par_scanned) = aggregate_parallel(&t, q, &src, strategy, 3).unwrap();
        assert_eq!(par, rt);
        assert_eq!(par_scanned, scanned);
        // ...and so must the morsel path (which degenerates to the
        // serial scan here: one morsel covers the whole table)
        let (mor, mor_scanned, metrics) = aggregate_morsel(&t, q, &src, strategy, 3).unwrap();
        assert_eq!(mor, rt);
        assert_eq!(mor_scanned, scanned);
        assert!(metrics.is_none(), "sub-morsel input must not fan out");
        // normalize nothing — kernel must already deliver sorted output
        rt.z_cols = q.zs.clone();
        rt
    }

    #[test]
    fn grouped_sum_dense_and_hash_agree() {
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");
        let dense = run(&q, GroupStrategy::Dense);
        let hash = run(&q, GroupStrategy::Hash);
        assert_eq!(dense, hash);
        // chair: 2014 → 15, 2015 → 31 (20 US + 11 UK)
        let chair = dense.group(&[Value::str("chair")]).unwrap();
        assert_eq!(chair.xs, vec![Value::Int(2014), Value::Int(2015)]);
        assert_eq!(chair.ys[0], vec![15.0, 31.0]);
        let desk = dense.group(&[Value::str("desk")]).unwrap();
        assert_eq!(desk.xs, vec![Value::Int(2014), Value::Int(2015)]);
        assert_eq!(desk.ys[0], vec![7.0, 9.0]);
    }

    #[test]
    fn groups_sorted_by_key_then_x() {
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_z("location")
            .with_z("product");
        let rt = run(&q, GroupStrategy::Dense);
        let keys: Vec<Vec<Value>> = rt.groups.iter().map(|g| g.key.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(rt.groups.len(), 4); // (UK,chair) (UK,desk) (US,chair) (US,desk)
    }

    #[test]
    fn multiple_aggregates_in_one_pass() {
        let q = SelectQuery::new(
            XSpec::raw("year"),
            vec![
                YSpec::sum("sales"),
                YSpec::avg("sales"),
                YSpec::new("sales", Agg::Min),
                YSpec::new("sales", Agg::Max),
                YSpec::new("*", Agg::Count),
            ],
        );
        let rt = run(&q, GroupStrategy::Hash);
        assert_eq!(rt.groups.len(), 1);
        let g = &rt.groups[0];
        assert_eq!(g.xs, vec![Value::Int(2014), Value::Int(2015)]);
        assert_eq!(g.ys[0], vec![22.0, 40.0]); // sums
        assert_eq!(g.ys[1], vec![22.0 / 3.0, 40.0 / 3.0]); // avgs
        assert_eq!(g.ys[2], vec![5.0, 9.0]); // mins
        assert_eq!(g.ys[3], vec![10.0, 20.0]); // maxs
        assert_eq!(g.ys[4], vec![3.0, 3.0]); // counts
    }

    #[test]
    fn filtered_source_applies_predicate() {
        let t = sales_table();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        let pred = compile_pred(&t, &Predicate::cat_eq("location", "UK")).unwrap();
        let src = RowSource::Filtered {
            n_rows: t.num_rows(),
            pred,
        };
        let (rt, scanned) = aggregate(&t, &q, &src, GroupStrategy::Dense).unwrap();
        assert_eq!(scanned, 6);
        assert_eq!(rt.groups[0].xs, vec![Value::Int(2015)]);
        assert_eq!(rt.groups[0].ys[0], vec![20.0]);
    }

    #[test]
    fn bitmap_source_visits_only_selected() {
        let t = sales_table();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        let bm: RoaringBitmap = [4u32, 5].into_iter().collect(); // the UK rows
        let src = RowSource::Bitmap(bm);
        let (rt, scanned) = aggregate(&t, &q, &src, GroupStrategy::Hash).unwrap();
        assert_eq!(scanned, 2);
        assert_eq!(rt.groups[0].ys[0], vec![20.0]);
    }

    #[test]
    fn range_source_scans_only_the_interval() {
        let t = sales_table();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        // The IVM delta shape: rows [3, 6) are "appended" after a
        // cached result covered rows [0, 3).
        let src = RowSource::Range {
            start: 3,
            end: 6,
            pred: None,
        };
        let (rt, scanned) = aggregate(&t, &q, &src, GroupStrategy::Dense).unwrap();
        assert_eq!(scanned, 3);
        let g = &rt.groups[0];
        assert_eq!(g.xs, vec![Value::Int(2014), Value::Int(2015)]);
        assert_eq!(g.ys[0], vec![7.0, 20.0]); // desk@2014 + (desk+chair)@2015
                                              // Sharded and morsel paths must agree on the offset interval.
        for threads in [2, 3] {
            let make = || RowSource::Range {
                start: 3,
                end: 6,
                pred: None,
            };
            let (par, n) =
                aggregate_parallel(&t, &q, &make(), GroupStrategy::Dense, threads).unwrap();
            assert_eq!((par, n), (rt.clone(), scanned));
            let (mor, n, _) =
                aggregate_morsel(&t, &q, &make(), GroupStrategy::Dense, threads).unwrap();
            assert_eq!((mor, n), (rt.clone(), scanned));
        }
    }

    #[test]
    fn range_source_applies_residual_predicate() {
        let t = sales_table();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        let pred = compile_pred(&t, &Predicate::cat_eq("location", "UK")).unwrap();
        let src = RowSource::Range {
            start: 2,
            end: 6,
            pred: Some(pred),
        };
        // Visits all four interval rows but only the two UK rows qualify.
        let (rt, scanned) = aggregate(&t, &q, &src, GroupStrategy::Hash).unwrap();
        assert_eq!(scanned, 4);
        assert_eq!(rt.groups[0].xs, vec![Value::Int(2015)]);
        assert_eq!(rt.groups[0].ys[0], vec![20.0]);
    }

    #[test]
    fn binned_x_axis() {
        let schema = Schema::new(vec![
            Field::new("weight", DataType::Float),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (w, s) in [
            (5.0, 1.0),
            (15.0, 2.0),
            (25.0, 3.0),
            (26.0, 4.0),
            (45.0, 5.0),
        ] {
            b.push_row(vec![Value::Float(w), Value::Float(s)]).unwrap();
        }
        let t = b.finish();
        // Table 3.10: bar.(x=bin(20), y=agg('sum'))
        let q = SelectQuery::new(XSpec::binned("weight", 20.0), vec![YSpec::sum("sales")]);
        let src = RowSource::All(t.num_rows());
        let (rt, _) = aggregate(&t, &q, &src, GroupStrategy::Dense).unwrap();
        let g = &rt.groups[0];
        assert_eq!(
            g.xs,
            vec![Value::Float(0.0), Value::Float(20.0), Value::Float(40.0)]
        );
        assert_eq!(g.ys[0], vec![3.0, 7.0, 5.0]);
    }

    #[test]
    fn compiled_pred_matches_reference_eval() {
        let t = sales_table();
        let preds = [
            Predicate::cat_eq("product", "chair"),
            Predicate::cat_eq("product", "ghost"),
            Predicate::And(vec![
                Atom::CatNeq {
                    col: "product".into(),
                    value: "chair".into(),
                },
                Atom::NumCmp {
                    col: "year".into(),
                    op: CmpOp::Ge,
                    value: 2015.0,
                },
            ]),
            Predicate::Or(vec![
                vec![Atom::CatEq {
                    col: "location".into(),
                    value: "UK".into(),
                }],
                vec![Atom::NumBetween {
                    col: "sales".into(),
                    lo: 0.0,
                    hi: 6.0,
                }],
            ]),
            Predicate::atom(Atom::CatIn {
                col: "product".into(),
                values: vec!["desk".into(), "ghost".into()],
            }),
            Predicate::atom(Atom::StrPrefix {
                col: "location".into(),
                prefix: "U".into(),
            }),
        ];
        for p in &preds {
            let compiled = compile_pred(&t, p).unwrap();
            for row in 0..t.num_rows() {
                assert_eq!(
                    compiled.eval(row),
                    p.eval_row(&t, row).unwrap(),
                    "mismatch for {p} at row {row}"
                );
            }
        }
    }

    #[test]
    fn group_space_calculation() {
        let t = sales_table();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");
        // 2 products × 2 years
        assert_eq!(group_space(&t, &q).unwrap(), 4);
        assert_eq!(choose_strategy(4, 1024), GroupStrategy::Dense);
        assert_eq!(choose_strategy(4000, 1024), GroupStrategy::Hash);
    }

    #[test]
    fn empty_selection_yields_empty_result() {
        let t = sales_table();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        let src = RowSource::Bitmap(RoaringBitmap::new());
        let (rt, scanned) = aggregate(&t, &q, &src, GroupStrategy::Dense).unwrap();
        assert!(rt.is_empty());
        assert_eq!(scanned, 0);
        let (rt, scanned) = aggregate_parallel(&t, &q, &src, GroupStrategy::Hash, 4).unwrap();
        assert!(rt.is_empty());
        assert_eq!(scanned, 0);
    }

    #[test]
    fn chunked_scan_matches_row_at_a_time() {
        let t = sales_table();
        let pred = compile_pred(&t, &Predicate::cat_eq("product", "chair")).unwrap();
        let src = RowSource::Filtered {
            n_rows: t.num_rows(),
            pred,
        };
        let mut rows_a: Vec<u32> = Vec::new();
        let scanned_a = src.for_each(|r| rows_a.push(r as u32));
        let mut rows_b: Vec<u32> = Vec::new();
        let scanned_b = src.for_each_chunk(|chunk| rows_b.extend_from_slice(chunk));
        assert_eq!(rows_a, rows_b);
        assert_eq!(scanned_a, scanned_b);
    }

    #[test]
    fn parallel_config_gates_small_scans() {
        let cfg = ParallelConfig::default();
        assert_eq!(cfg.threads_for(10), 1, "tiny scans stay serial");
        assert_eq!(cfg.sched, SchedulingMode::Morsel, "morsel is the default");
        let explicit = ParallelConfig {
            threads: 4,
            min_parallel_rows: 0,
            ..Default::default()
        };
        assert_eq!(explicit.threads_for(10), 4);
    }

    #[test]
    fn parallel_config_env_overrides() {
        let serial = ParallelConfig::from_env_spec(Some("serial"), None, None, None, None);
        assert_eq!(serial.threads, 1);
        assert_eq!(serial.threads_for(usize::MAX - 1), 1);

        // Pinning a scheduler does not change *when* scans go parallel…
        let stat = ParallelConfig::from_env_spec(Some("static"), Some("2"), None, None, None);
        assert_eq!(stat.sched, SchedulingMode::Static);
        assert_eq!(stat.threads, 2);
        assert_eq!(
            stat.min_parallel_rows,
            ParallelConfig::default().min_parallel_rows,
            "mode alone must not drop the serial gate"
        );
        // …the gate, the morsel size, and the claim batch are their own
        // knobs (the CI matrix sets 0 and a small morsel so tiny tables
        // fan out over many real claims).
        let forced = ParallelConfig::from_env_spec(
            Some(" MORSEL "),
            Some("3"),
            Some("0"),
            Some("256"),
            Some("4"),
        );
        assert_eq!(forced.sched, SchedulingMode::Morsel);
        assert_eq!(forced.threads, 3);
        assert_eq!(forced.threads_for(1), 3);
        assert_eq!(forced.morsel_rows, 256);
        assert_eq!(forced.claim_batch, 4);

        // Empty strings (a CI matrix's "not overridden" row) are unset.
        assert_eq!(
            ParallelConfig::from_env_spec(Some(""), Some(" "), Some(""), Some(""), Some("")),
            ParallelConfig::default()
        );
        assert_eq!(
            ParallelConfig::from_env_spec(None, None, None, None, None),
            ParallelConfig::default()
        );
        assert_eq!(ParallelConfig::default().claim_batch, 1);

        // Typos must fail loudly, not silently run the default config.
        for bad in [
            std::panic::catch_unwind(|| {
                ParallelConfig::from_env_spec(Some("bogus"), None, None, None, None)
            }),
            std::panic::catch_unwind(|| {
                ParallelConfig::from_env_spec(None, Some("lots"), None, None, None)
            }),
            std::panic::catch_unwind(|| {
                ParallelConfig::from_env_spec(None, None, Some("-3"), None, None)
            }),
            std::panic::catch_unwind(|| {
                ParallelConfig::from_env_spec(None, None, None, Some("0"), None)
            }),
            std::panic::catch_unwind(|| {
                ParallelConfig::from_env_spec(None, None, None, None, Some("0"))
            }),
        ] {
            assert!(bad.is_err(), "invalid ZV_SCHED_* values must panic");
        }
    }

    /// A table big enough for several morsels, with values exactly
    /// representable so bit-for-bit equality against the serial scan is
    /// the right assertion.
    fn wide_table(rows: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("key", DataType::Int),
            Field::new("hot", DataType::Int),
            Field::new("val", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..rows {
            b.push_row(vec![
                Value::Int((i % 37) as i64),
                Value::Int(i64::from(i < rows / 8)),
                Value::Float((i % 1013) as f64 * 0.25),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn morsel_metrics_account_for_every_morsel() {
        let rows = 3 * MORSEL_ROWS + 17;
        let t = wide_table(rows);
        let q = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")]);
        let src = RowSource::All(t.num_rows());
        for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
            let (serial, scanned) = aggregate(&t, &q, &src, strategy).unwrap();
            let (mor, mor_scanned, metrics) = aggregate_morsel(&t, &q, &src, strategy, 2).unwrap();
            assert_eq!(mor, serial);
            assert_eq!(mor_scanned, scanned);
            let m = metrics.expect("multi-morsel scan must report telemetry");
            assert_eq!(m.workers, 2);
            assert_eq!(m.morsels, 4);
            assert_eq!(m.per_worker.len(), 2);
            assert_eq!(m.per_worker.iter().sum::<u64>(), m.morsels);
            assert_eq!(
                m.idle_workers,
                m.per_worker.iter().filter(|&&c| c == 0).count() as u64
            );
        }
    }

    #[test]
    fn morsel_skewed_filter_matches_serial_and_static() {
        // All matching rows cluster in the first eighth of the table —
        // the shape that starves a static split.
        let rows = 4 * MORSEL_ROWS;
        let t = wide_table(rows);
        let q = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")]);
        let pred = Predicate::num_eq("hot", 1.0);
        let make_src = || RowSource::Filtered {
            n_rows: t.num_rows(),
            pred: compile_pred(&t, &pred).unwrap(),
        };
        for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
            let (serial, scanned) = aggregate(&t, &q, &make_src(), strategy).unwrap();
            for threads in [2usize, 3, 5] {
                let (stat, stat_scanned) =
                    aggregate_parallel(&t, &q, &make_src(), strategy, threads).unwrap();
                let (mor, mor_scanned, _) =
                    aggregate_morsel(&t, &q, &make_src(), strategy, threads).unwrap();
                assert_eq!(stat, serial, "{strategy:?} static × {threads}");
                assert_eq!(mor, serial, "{strategy:?} morsel × {threads}");
                assert_eq!(stat_scanned, scanned);
                assert_eq!(mor_scanned, scanned);
            }
        }
    }

    #[test]
    fn claim_batching_is_merge_transparent() {
        // Batched claiming changes only *who* scans which morsel, never
        // the morsel tagging — so any batch size must reproduce the
        // unbatched result bit-for-bit (inexact floats included: the
        // merge is ordered by morsel index either way).
        let rows = 7 * MORSEL_ROWS + 123;
        let t = wide_table(rows);
        let q = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")]);
        let src = RowSource::All(t.num_rows());
        for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
            let (reference, scanned, _) = aggregate_morsel(&t, &q, &src, strategy, 2).unwrap();
            for batch in [2usize, 3, 64] {
                for threads in [2usize, 3] {
                    let ctx = QueryCtx::new();
                    let (rt, b_scanned, metrics) = aggregate_morsel_ctx(
                        &t,
                        &q,
                        &src,
                        strategy,
                        threads,
                        MORSEL_ROWS,
                        batch,
                        &ctx,
                    )
                    .unwrap();
                    assert_eq!(rt, reference, "{strategy:?} batch {batch} × {threads}");
                    assert_eq!(b_scanned, scanned);
                    let m = metrics.expect("multi-morsel scan must report telemetry");
                    assert_eq!(m.morsels, 8);
                    assert_eq!(m.per_worker.iter().sum::<u64>(), m.morsels);
                    assert_eq!(ctx.stats().morsels_claimed, m.morsels);
                    assert_eq!(ctx.stats().rows_scanned, scanned);
                }
            }
        }
    }

    #[test]
    fn cancelled_ctx_stops_every_scheduler() {
        let rows = 4 * MORSEL_ROWS;
        let t = wide_table(rows);
        let q = SelectQuery::new(XSpec::raw("key"), vec![YSpec::sum("val")]);
        let src = RowSource::All(t.num_rows());

        // Pre-cancelled: no scheduler may scan a single row.
        type Run = fn(&Table, &SelectQuery, &RowSource<'_>, &QueryCtx) -> Result<(), StorageError>;
        let runs: [Run; 3] = [
            |t, q, src, ctx| aggregate_ctx(t, q, src, GroupStrategy::Dense, ctx).map(|_| ()),
            |t, q, src, ctx| {
                aggregate_parallel_ctx(t, q, src, GroupStrategy::Dense, 3, ctx).map(|_| ())
            },
            |t, q, src, ctx| {
                aggregate_morsel_ctx(t, q, src, GroupStrategy::Dense, 3, MORSEL_ROWS, 1, ctx)
                    .map(|_| ())
            },
        ];
        for run in runs {
            let ctx = QueryCtx::new();
            ctx.cancel();
            assert!(matches!(
                run(&t, &q, &src, &ctx),
                Err(StorageError::Cancelled)
            ));
            assert_eq!(ctx.stats().rows_scanned, 0, "pre-cancelled must not scan");
        }

        // A mid-scan row budget stops the morsel path strictly early and
        // accounts for the abandoned morsels.
        let ctx = QueryCtx::new().with_row_budget(MORSEL_ROWS as u64);
        let err = aggregate_morsel_ctx(&t, &q, &src, GroupStrategy::Dense, 2, MORSEL_ROWS, 1, &ctx)
            .unwrap_err();
        assert_eq!(err, StorageError::Cancelled);
        let stats = ctx.stats();
        assert!(stats.cancelled);
        assert_eq!(
            stats.reason,
            Some(crate::lifecycle::CancelReason::RowBudget)
        );
        assert!(
            stats.rows_scanned < rows as u64,
            "cancel must stop the scan early ({} of {rows})",
            stats.rows_scanned
        );
        assert!(stats.morsels_cancelled > 0, "abandoned morsels recorded");
        assert_eq!(
            stats.morsels_claimed + stats.morsels_cancelled,
            4,
            "every morsel is either claimed or cancelled"
        );
    }

    #[test]
    fn morsel_float_sums_are_thread_count_independent() {
        // 0.1 is not exactly representable: partial-sum boundaries would
        // show up as last-bit drift if the merge order ever depended on
        // claim timing or worker count. The morsel merge is ordered by
        // morsel index, so every thread count must agree bit-for-bit
        // with every other (serial may legitimately differ in the last
        // ulp — it reduces row-by-row, not morsel-by-morsel).
        let schema = Schema::new(vec![
            Field::new("key", DataType::Int),
            Field::new("val", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..(3 * MORSEL_ROWS + 911) {
            b.push_row(vec![
                Value::Int((i % 11) as i64),
                Value::Float(0.1 + (i % 97) as f64 * 0.3),
            ])
            .unwrap();
        }
        let t = b.finish();
        let q = SelectQuery::new(
            XSpec::raw("key"),
            vec![YSpec::sum("val"), YSpec::avg("val")],
        );
        let src = RowSource::All(t.num_rows());
        for strategy in [GroupStrategy::Dense, GroupStrategy::Hash] {
            let (reference, _, _) = aggregate_morsel(&t, &q, &src, strategy, 2).unwrap();
            for threads in [2usize, 3, 5, 8] {
                for _rep in 0..2 {
                    let (rt, _, _) = aggregate_morsel(&t, &q, &src, strategy, threads).unwrap();
                    assert_eq!(rt.groups.len(), reference.groups.len());
                    for (g, gref) in rt.groups.iter().zip(&reference.groups) {
                        assert_eq!(g.xs, gref.xs);
                        assert_eq!(g.ys.len(), gref.ys.len());
                        for (ys, ys_ref) in g.ys.iter().zip(&gref.ys) {
                            assert_eq!(ys.len(), ys_ref.len());
                            for (a, b) in ys.iter().zip(ys_ref) {
                                assert_eq!(
                                    a.to_bits(),
                                    b.to_bits(),
                                    "float drift under {strategy:?} × {threads}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
