//! The conventional comparator engine: full scans with compiled per-row
//! predicates and dense-array aggregation. This stands in for the paper's
//! PostgreSQL backend (see DESIGN.md, substitution 1): it has no bitmap
//! indexes, so it must visit every row, but its aggregation path is
//! cardinality-aware (dense group arrays up to a large limit), which is
//! what lets it overtake the bitmap engine at 100% selectivity with many
//! groups (Figure 7.5a).

use crate::db::Database;
use crate::exec::{self, compile_pred, RowSource};
use crate::query::{ResultTable, SelectQuery};
use crate::stats::ExecStats;
use crate::table::{StorageError, Table};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`ScanDb`].
#[derive(Clone, Debug)]
pub struct ScanDbConfig {
    /// Group-key spaces up to this size use dense accumulation.
    pub dense_group_limit: u128,
    /// Simulated round-trip latency per request.
    pub request_overhead: Duration,
    /// Sharded-scan tuning (thread count, serial threshold).
    pub parallel: exec::ParallelConfig,
}

impl Default for ScanDbConfig {
    fn default() -> Self {
        ScanDbConfig {
            dense_group_limit: 1 << 24,
            request_overhead: Duration::ZERO,
            parallel: exec::ParallelConfig::default(),
        }
    }
}

/// Scan-based reference engine.
pub struct ScanDb {
    table: Arc<Table>,
    config: ScanDbConfig,
    stats: ExecStats,
}

impl ScanDb {
    pub fn new(table: Arc<Table>) -> Self {
        Self::with_config(table, ScanDbConfig::default())
    }

    pub fn with_config(table: Arc<Table>, config: ScanDbConfig) -> Self {
        ScanDb {
            table,
            config,
            stats: ExecStats::new(),
        }
    }

    pub fn config(&self) -> &ScanDbConfig {
        &self.config
    }
}

impl Database for ScanDb {
    fn name(&self) -> &'static str {
        "scan-db"
    }

    fn table(&self) -> &Arc<Table> {
        &self.table
    }

    fn execute(&self, query: &SelectQuery) -> Result<ResultTable, StorageError> {
        let start = Instant::now();
        let source = if query.predicate.is_true() {
            RowSource::All(self.table.num_rows())
        } else {
            let pred = compile_pred(&self.table, &query.predicate)?;
            RowSource::Filtered {
                n_rows: self.table.num_rows(),
                pred,
            }
        };
        let groups = exec::group_space(&self.table, query)?;
        let strategy = exec::choose_strategy(groups, self.config.dense_group_limit);
        let threads = self.config.parallel.threads_for(source.estimated_rows());
        let (result, scanned) = if threads > 1 {
            exec::aggregate_parallel(&self.table, query, &source, strategy, threads)?
        } else {
            exec::aggregate(&self.table, query, &source, strategy)?
        };
        self.stats.record_query(scanned, start.elapsed());
        Ok(result)
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn request_overhead(&self) -> Duration {
        self.config.request_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::query::{XSpec, YSpec};
    use crate::table::{Field, Schema, TableBuilder};
    use crate::value::{DataType, Value};

    fn db() -> ScanDb {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (y, p, s) in [
            (2014, "chair", 10.0),
            (2015, "chair", 20.0),
            (2014, "desk", 7.0),
            (2015, "desk", 9.0),
        ] {
            b.push_row(vec![Value::Int(y), Value::str(p), Value::Float(s)])
                .unwrap();
        }
        ScanDb::new(b.finish_shared())
    }

    #[test]
    fn always_scans_all_rows() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("product", "desk"));
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.rows_scanned, 4, "scan engine visits every row");
        assert_eq!(rt.groups[0].ys[0], vec![7.0, 9.0]);
    }

    #[test]
    fn grouped_output_matches_expectation() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");
        let rt = db.execute(&q).unwrap();
        assert_eq!(rt.groups.len(), 2);
        let chair = rt.group(&[Value::str("chair")]).unwrap();
        assert_eq!(chair.ys[0], vec![10.0, 20.0]);
    }
}
