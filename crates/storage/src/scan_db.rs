//! The conventional comparator engine: full scans with compiled per-row
//! predicates and dense-array aggregation. This stands in for the paper's
//! PostgreSQL backend (see DESIGN.md, substitution 1): it has no bitmap
//! indexes, so it must visit every row, but its aggregation path is
//! cardinality-aware (dense group arrays up to a large limit), which is
//! what lets it overtake the bitmap engine at 100% selectivity with many
//! groups (Figure 7.5a).
//!
//! The table lives behind an `RwLock<Arc<Table>>`: queries clone the
//! current snapshot (cheap Arc bump) and scan it lock-free, while
//! appends copy-on-write a new snapshot with a fresh version — readers
//! mid-scan keep their old snapshot, and the version bump retires every
//! cached result of the old one (see [`crate::cache`]).

use crate::cache::{CacheConfig, ResultCache};
use crate::db::{Database, EngineSnapshot};
use crate::exec::{self, compile_pred, RowSource};
use crate::lifecycle::QueryCtx;
use crate::persist::{PersistOptions, Persistence};
use crate::query::{ResultTable, SelectQuery};
use crate::stats::ExecStats;
use crate::table::{StorageError, Table};
use crate::value::Value;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Tuning knobs for [`ScanDb`].
#[derive(Clone, Debug)]
pub struct ScanDbConfig {
    /// Group-key spaces up to this size use dense accumulation.
    pub dense_group_limit: u128,
    /// Simulated round-trip latency per request.
    pub request_overhead: Duration,
    /// Parallel-scan tuning (thread count, serial threshold, scheduling
    /// mode). The default consults the `ZV_SCHED_*` environment
    /// overrides ([`exec::ParallelConfig::from_env`]) so CI can force a
    /// scheduling configuration across whole test suites.
    pub parallel: exec::ParallelConfig,
    /// Engine-level result cache bounds ([`CacheConfig::disabled`] turns
    /// the cache off, e.g. for raw-engine benchmarks).
    pub cache: CacheConfig,
}

impl Default for ScanDbConfig {
    fn default() -> Self {
        ScanDbConfig {
            dense_group_limit: 1 << 24,
            request_overhead: Duration::ZERO,
            parallel: exec::ParallelConfig::from_env(),
            cache: CacheConfig::default(),
        }
    }
}

impl ScanDbConfig {
    /// Default config with the result cache off — for benchmarks and
    /// tests that measure (or compare against) raw engine behaviour.
    pub fn uncached() -> Self {
        ScanDbConfig {
            cache: CacheConfig::disabled(),
            ..Default::default()
        }
    }
}

/// Scan-based reference engine.
pub struct ScanDb {
    table: RwLock<Arc<Table>>,
    /// Serializes mutations so two appends cannot base their snapshots
    /// on the same predecessor (readers never touch this).
    append_lock: Mutex<()>,
    config: ScanDbConfig,
    /// Shared with pinned snapshots, so scan telemetry recorded during
    /// snapshot execution lands on the engine's counters.
    stats: Arc<ExecStats>,
    cache: Option<Arc<ResultCache>>,
    /// Durable-storage handle ([`ScanDb::open_durable`]); `None` for
    /// memory-only engines.
    persist: Option<Arc<Persistence>>,
}

impl ScanDb {
    pub fn new(table: Arc<Table>) -> Self {
        Self::with_config(table, ScanDbConfig::default())
    }

    pub fn with_config(table: Arc<Table>, config: ScanDbConfig) -> Self {
        let cache = config.cache.is_enabled().then(|| {
            Arc::new(ResultCache::with_fault(
                &config.cache,
                config.parallel.fault,
            ))
        });
        Self::build(table, config, cache)
    }

    /// Construct with an explicitly shared cache (versioned keys keep
    /// entries from different engines / snapshots apart).
    pub fn with_shared_cache(
        table: Arc<Table>,
        config: ScanDbConfig,
        cache: Arc<ResultCache>,
    ) -> Self {
        Self::build(table, config, Some(cache))
    }

    fn build(table: Arc<Table>, config: ScanDbConfig, cache: Option<Arc<ResultCache>>) -> Self {
        ScanDb {
            table: RwLock::new(table),
            append_lock: Mutex::new(()),
            config,
            stats: Arc::new(ExecStats::new()),
            cache,
            persist: None,
        }
    }

    /// Open a durable engine on `dir`: recover the newest valid
    /// snapshot plus the WAL tail (crash-exact — see [`crate::persist`]),
    /// or seed a fresh directory with `init()` and checkpoint it. Every
    /// committed append is WAL-logged and fsynced *before* it becomes
    /// visible to queries, so the in-memory table version is always a
    /// durable version.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        config: ScanDbConfig,
        init: impl FnOnce() -> Arc<Table>,
    ) -> Result<Self, StorageError> {
        let (persistence, recovered) = Persistence::open(
            dir,
            PersistOptions {
                fault: config.parallel.fault,
            },
        )?;
        let table = match recovered {
            Some(t) => Arc::new(t),
            None => {
                let t = init();
                persistence.checkpoint(&t)?;
                t
            }
        };
        let mut db = Self::with_config(table, config);
        db.persist = Some(Arc::new(persistence));
        Ok(db)
    }

    /// The durable-storage handle, when this engine was opened with
    /// [`ScanDb::open_durable`].
    pub fn persistence(&self) -> Option<&Persistence> {
        self.persist.as_deref()
    }

    /// Write a full snapshot of the current table and reset the WAL.
    /// Serialized against appends, so no committed batch can be lost
    /// between the snapshot and the WAL reset.
    pub fn checkpoint(&self) -> Result<PathBuf, StorageError> {
        let persist = self
            .persist
            .as_ref()
            .ok_or_else(|| StorageError::Io("engine has no data directory".into()))?;
        let _appending = crate::fault::lock_recover(&self.append_lock);
        let table = self.snapshot();
        persist.checkpoint(&table)
    }

    pub fn config(&self) -> &ScanDbConfig {
        &self.config
    }

    fn snapshot(&self) -> Arc<Table> {
        // Recover-or-proceed: the lock only ever guards an `Arc` swap,
        // so a poisoned lock still holds an intact snapshot (either the
        // old or the new table) — unwrapping would wedge the engine
        // after any contained panic.
        crate::fault::read_recover(&self.table).clone()
    }

    fn pin_snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            table: self.snapshot(),
            dense_group_limit: self.config.dense_group_limit,
            parallel: self.config.parallel,
            stats: Arc::clone(&self.stats),
        }
    }

    /// Poison the table lock by panicking while holding its write
    /// guard — the chaos suite's hook for proving the engine recovers
    /// (the guarded value is a plain `Arc`, so recovery is safe).
    #[doc(hidden)]
    pub fn poison_table_lock_for_chaos(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.table.write().unwrap_or_else(|p| p.into_inner());
            panic!(
                "{} deliberate table-lock poisoning",
                crate::fault::PANIC_MARKER
            );
        }));
    }

    /// Swap in a mutated table built by `mutate`; returns its row delta.
    /// The O(n) copy-on-write runs outside the reader-visible lock —
    /// concurrent queries keep their old snapshot throughout — and
    /// appends serialize on `append_lock`. On a durable engine `log`
    /// WAL-logs and fsyncs the batch first (straight from the caller's
    /// borrowed rows/columns — no extra copy); a disk failure aborts
    /// the whole mutation, so nothing ever becomes visible that isn't
    /// durable.
    fn mutate_table(
        &self,
        mutate: impl FnOnce(&mut Table) -> Result<usize, StorageError>,
        log: impl FnOnce(&Persistence, &Table) -> Result<(), StorageError>,
    ) -> Result<usize, StorageError> {
        let _appending = crate::fault::lock_recover(&self.append_lock);
        let mut next = (*self.snapshot()).clone();
        let old_version = next.version();
        let n = mutate(&mut next)?;
        if n == 0 && next.version() == old_version {
            return Ok(0);
        }
        if let Some(persist) = &self.persist {
            log(persist, &next)?;
        }
        *crate::fault::write_recover(&self.table) = Arc::new(next);
        // The old version's cache entries are deliberately *kept*: they
        // are unreachable for exact lookups (versioned keys) but serve
        // as IVM merge ancestors for post-append queries; the LRU
        // reclaims them once the workload moves on.
        Ok(n)
    }
}

/// A pinned [`ScanDb`] view: the table snapshot plus the execution
/// tuning frozen at pin time.
struct ScanSnapshot {
    table: Arc<Table>,
    dense_group_limit: u128,
    parallel: exec::ParallelConfig,
    stats: Arc<ExecStats>,
}

impl EngineSnapshot for ScanSnapshot {
    fn table(&self) -> &Arc<Table> {
        &self.table
    }

    fn execute(
        &self,
        query: &SelectQuery,
        ctx: &QueryCtx,
    ) -> Result<(ResultTable, u64), StorageError> {
        let table = &self.table;
        let source = if query.predicate.is_true() {
            RowSource::All(table.num_rows())
        } else {
            let pred = compile_pred(table, &query.predicate)?;
            RowSource::Filtered {
                n_rows: table.num_rows(),
                pred,
            }
        };
        let groups = exec::group_space(table, query)?;
        let strategy = exec::choose_strategy(groups, self.dense_group_limit);
        // A degraded query (`QueryCtx::force_serial`, set by the retry
        // ladder or the breaker) is pinned to the injection-free serial
        // path no matter what the config would choose.
        let threads = if ctx.serial_only() {
            1
        } else {
            self.parallel.threads_for(source.estimated_rows())
        };
        exec::run_scheduled(
            table,
            query,
            &source,
            strategy,
            threads,
            &self.parallel,
            &self.stats,
            ctx,
        )
    }

    fn execute_range(
        &self,
        query: &SelectQuery,
        ctx: &QueryCtx,
        start: usize,
        end: usize,
    ) -> Result<(ResultTable, u64), StorageError> {
        let table = &self.table;
        debug_assert!(start <= end && end <= table.num_rows());
        let pred = if query.predicate.is_true() {
            None
        } else {
            Some(compile_pred(table, &query.predicate)?)
        };
        let source = RowSource::Range { start, end, pred };
        let groups = exec::group_space_over(table, query, Some((start, end)))?;
        let strategy = exec::choose_strategy(groups, self.dense_group_limit);
        let threads = if ctx.serial_only() {
            1
        } else {
            self.parallel.threads_for(source.estimated_rows())
        };
        exec::run_scheduled(
            table,
            query,
            &source,
            strategy,
            threads,
            &self.parallel,
            &self.stats,
            ctx,
        )
    }
}

impl Database for ScanDb {
    fn name(&self) -> &'static str {
        "scan-db"
    }

    fn pin(&self) -> Arc<dyn EngineSnapshot> {
        Arc::new(self.pin_snapshot())
    }

    fn table(&self) -> Arc<Table> {
        self.snapshot()
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn result_cache(&self) -> Option<&ResultCache> {
        self.cache.as_deref()
    }

    fn append_rows(&self, rows: &[Vec<Value>]) -> Result<usize, StorageError> {
        self.mutate_table(
            |t| t.append_rows(rows),
            |p, t| p.log_append(t.version(), t.schema(), rows),
        )
    }

    fn append_table(&self, other: &Table) -> Result<usize, StorageError> {
        self.mutate_table(
            |t| t.append_table(other),
            |p, t| p.log_append_table(t.version(), other),
        )
    }

    fn request_overhead(&self) -> Duration {
        self.config.request_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::query::{XSpec, YSpec};
    use crate::table::{Field, Schema, TableBuilder};
    use crate::value::{DataType, Value};

    fn db() -> ScanDb {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (y, p, s) in [
            (2014, "chair", 10.0),
            (2015, "chair", 20.0),
            (2014, "desk", 7.0),
            (2015, "desk", 9.0),
        ] {
            b.push_row(vec![Value::Int(y), Value::str(p), Value::Float(s)])
                .unwrap();
        }
        // The fixture is 4 rows: disable cost-based admission so the
        // cache-behaviour tests below still exercise warm hits.
        ScanDb::with_config(
            b.finish_shared(),
            ScanDbConfig {
                cache: CacheConfig::admit_all(),
                ..Default::default()
            },
        )
    }

    #[test]
    fn always_scans_all_rows() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("product", "desk"));
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.rows_scanned, 4, "scan engine visits every row");
        assert_eq!(rt.groups[0].ys[0], vec![7.0, 9.0]);
    }

    #[test]
    fn grouped_output_matches_expectation() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");
        let rt = db.execute(&q).unwrap();
        assert_eq!(rt.groups.len(), 2);
        let chair = rt.group(&[Value::str("chair")]).unwrap();
        assert_eq!(chair.ys[0], vec![10.0, 20.0]);
    }

    #[test]
    fn warm_request_skips_the_scan() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product");
        let cold = db.run_request(std::slice::from_ref(&q)).unwrap();
        let before = db.stats().snapshot();
        let warm = db.run_request(std::slice::from_ref(&q)).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(cold, warm);
        assert_eq!(delta.rows_scanned, 0, "warm repeat must not scan");
        assert_eq!(delta.queries, 0);
        assert_eq!(delta.cache_hits, 1);
    }

    #[test]
    fn append_refreshes_results_and_version() {
        let db = db();
        let v0 = db.table().version();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        let before = db.run_request(std::slice::from_ref(&q)).unwrap();
        assert_eq!(before[0].groups[0].ys[0], vec![17.0, 29.0]);
        db.append_rows(&[vec![
            Value::Int(2014),
            Value::str("lamp"),
            Value::Float(3.0),
        ]])
        .unwrap();
        assert!(db.table().version() > v0);
        assert_eq!(db.table().num_rows(), 5);
        let after = db.run_request(std::slice::from_ref(&q)).unwrap();
        assert_eq!(
            after[0].groups[0].ys[0],
            vec![20.0, 29.0],
            "post-append request must see the new row, not the cached result"
        );
    }
}
