//! # Durable storage: snapshot files + an append WAL
//!
//! This module is the **on-disk format reference** (the role
//! `zv-server`'s `proto` module plays for the wire). Everything is
//! little-endian, CRC-checked, and written so that a crash at *any*
//! byte leaves the data directory recoverable to the exact last
//! durable table version — the versions that key the result cache are
//! process-monotonic ([`Table::version`]) and this module makes them
//! durable, so cache keys keep their meaning across restarts.
//!
//! ## Data directory layout
//!
//! ```text
//! <dir>/
//!   snapshot-<version, 20-digit zero-padded>.zvt   # full columnar dump
//!   snapshot-<version>.zvt.tmp                     # crash leftover (ignored, removed)
//!   wal.log                                        # append batches since the snapshot
//! ```
//!
//! ## Snapshot file (`.zvt`)
//!
//! One immutable columnar dump of a pinned table snapshot at an exact
//! version, written atomically: temp file → fsync → rename → dir sync.
//!
//! ```text
//! [0..4)    magic  b"ZVSN"
//! [4..8)    u32    format version (currently 2; v1 still loads)
//! [8..12)   u32    meta-block length M
//! [12..12+M)       meta block (see below)
//! [..+4)    u32    CRC32 of the meta block
//! [..]             column segments, concatenated in schema order
//!
//! meta block:
//!   u64  table version
//!   u64  row count
//!   u32  column count C
//!   C ×  { u8 dtype (0=Int 1=Float 2=Cat), u32 name length, name bytes,
//!          u64 segment length, u32 segment CRC32 }
//! ```
//!
//! Column segments (lengths and CRCs live in the directory above).
//! Format 2 writes `Int` and `Cat` code payloads in the in-memory
//! chunked-encoding layout (see [`crate::column`]) **verbatim** — no
//! re-encode on save, no re-encode on load:
//!
//! * `Float` — row count × `f64` bit patterns (exact round-trip),
//!   unchanged from v1
//! * `Int`   — a *packed chunk store* (below) of `i64` values
//! * `Cat`   — `u64` dictionary length, then per entry `u32` length +
//!   UTF-8 bytes (first-seen order, so codes survive verbatim), then a
//!   packed chunk store of `u32` codes
//!
//! ```text
//! packed chunk store (T = i64 or u32):
//!   u32  chunk shift S (rows per sealed chunk = 1 << S, S ≤ 12)
//!   u32  sealed chunk count N
//!   N ×  { u8 encoding tag, T stat_min, T stat_max, payload }
//!     tag 0 Plain :  (1 << S) × T
//!     tag 1 Packed:  T frame-of-reference min, u32 bit width W (≤ 64),
//!                    u32 word count (= ceil((1 << S)·W / 64)), words × u64
//!     tag 2 Rle   :  u32 run count R, R × { T value, u16 exclusive end }
//!                    (ends strictly increasing, last = 1 << S)
//!   u32  tail length (< 1 << S)
//!   tail × T
//! ```
//!
//! Decoding validates structure exhaustively (length accounting, width
//! and word-count bounds, run monotonicity, dictionary-code bounds —
//! packed code chunks are bounds-scanned without materializing), so a
//! CRC-valid but malformed segment is rejected whole. Format 1
//! snapshots (plain `row count × value` segments) still load; their
//! columns are re-chunked under the current [`crate::column`] encoding
//! policy at load time.
//!
//! ## WAL (`wal.log`)
//!
//! A sequence of frames, one per committed `append_rows` batch,
//! fsynced before the batch becomes visible in memory
//! (durability-before-visibility — see `ScanDb::append_rows`):
//!
//! ```text
//! u32  frame length L (= 8 + payload length)
//! u64  post-append table version   ┐
//! payload                          ┴ the L bytes the CRC covers
//! u32  CRC32 of the L body bytes
//!
//! payload:
//!   u32  row count R
//!   R ×  one value per schema column, already coerced to the column
//!        dtype: Int → i64, Float → f64 bits, Cat → u32 length + UTF-8
//! ```
//!
//! A frame body never exceeds [`MAX_WAL_FRAME`]: the write path rejects
//! larger batches (the append fails, nothing is committed), which is
//! what lets recovery treat any larger length field as torn garbage.
//!
//! ## Recovery
//!
//! [`Persistence::open`] = load the **newest CRC-valid snapshot**
//! (corrupt ones are skipped in favour of older ones; `.tmp` leftovers
//! from a crash-before-rename are deleted), then replay WAL frames in
//! file order, **skipping** frames at or below the snapshot's version
//! (legitimate after a crash between snapshot rename and WAL reset)
//! and **restoring** each frame's recorded version, so recovery ends
//! at the exact pre-crash durable version. A torn or CRC-corrupt tail
//! is truncated at the last valid frame boundary and never served —
//! the store may forget an unfsynced suffix, never lie about one.
//!
//! ## Fault injection
//!
//! Four deterministic [`FaultPoint`]s cover the write path (all
//! indexed by per-[`Persistence`] operation sequence numbers, epoch 0,
//! so chaos suites replay the exact decision stream):
//! [`FaultPoint::DiskWriteFail`] (snapshot write cut short),
//! [`FaultPoint::FsyncFail`] (append rolled back / checkpoint
//! aborted), [`FaultPoint::CrashBeforeRename`] (complete `.tmp`, no
//! rename), and [`FaultPoint::WalTearTail`] (append torn at
//! [`wal_tear_offset`], log poisoned fail-stop until the next
//! successful checkpoint resets it).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::column::{
    packed_delta, CatColumn, Chunked, Coded, Column, EncChunk, EncodePolicy, IntColumn,
};
use crate::fault::{lock_recover, FaultPoint, FaultSpec};
use crate::table::{Field, Schema, StorageError, Table};
use crate::value::{DataType, Value};

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ZVSN";
/// On-disk format version written into every snapshot header. Version
/// 2 stores Int/Cat segments in the chunked-encoding layout verbatim;
/// version 1 (plain value arrays) is still accepted on load.
pub const FORMAT_VERSION: u32 = 2;
/// Oldest snapshot format version [`decode_snapshot`] still accepts.
pub const MIN_FORMAT_VERSION: u32 = 1;
/// Upper bound on one WAL frame's body, enforced on **both** sides of
/// the log: replay rejects a larger length field as torn garbage
/// before allocating (same rationale as the wire's `MAX_FRAME`), and
/// [`Persistence::log_append`] refuses to write a batch that encodes
/// past it — otherwise the oversized frame would be fsynced and acked,
/// then silently truncated (with everything after it) on the next
/// open. Callers split bulk loads into sub-cap batches.
pub const MAX_WAL_FRAME: usize = 64 << 20;

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_PREFIX: &str = "snapshot-";
const SNAPSHOT_SUFFIX: &str = ".zvt";

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — std-only build, so
// the table is generated at compile time.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC32 of `bytes` (the checksum every snapshot segment and WAL
/// frame carries).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The byte offset at which an injected [`FaultPoint::WalTearTail`]
/// cuts a WAL frame of `frame_len` bytes: a pure hash of the fault
/// seed and the append sequence number, always strictly inside the
/// frame (`0..frame_len`), so chaos tests can predict the exact torn
/// byte and recovery proptests can reproduce it.
pub fn wal_tear_offset(seed: u64, seq: u64, frame_len: usize) -> usize {
    // SplitMix64 finalizer over (seed, seq) — mirrors `FaultSpec::fires`.
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(0x5ca7_da7a_0009);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % frame_len.max(1) as u64) as usize
}

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{ctx}: {e}"))
}

fn malformed(msg: impl Into<String>) -> StorageError {
    StorageError::Io(msg.into())
}

// ---------------------------------------------------------------------
// Little-endian buffer helpers
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| malformed("truncated record"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<&'a str, StorageError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| malformed("non-UTF-8 string"))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Cat => 2,
    }
}

fn tag_dtype(t: u8) -> Result<DataType, StorageError> {
    match t {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Cat),
        other => Err(malformed(format!("unknown column dtype tag {other}"))),
    }
}

// ---------------------------------------------------------------------
// Snapshot encode/decode
// ---------------------------------------------------------------------

/// Serialization hooks for one [`Chunked`] value type.
trait PersistCoded: Coded {
    fn put(buf: &mut Vec<u8>, v: Self);
    fn take(c: &mut Cursor<'_>) -> Result<Self, StorageError>;
}

impl PersistCoded for i64 {
    fn put(buf: &mut Vec<u8>, v: Self) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    fn take(c: &mut Cursor<'_>) -> Result<Self, StorageError> {
        c.i64()
    }
}

impl PersistCoded for u32 {
    fn put(buf: &mut Vec<u8>, v: Self) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    fn take(c: &mut Cursor<'_>) -> Result<Self, StorageError> {
        c.u32()
    }
}

/// Serialize a chunked store in its in-memory layout, verbatim — sealed
/// chunks (with their stats) keep their encodings; no re-encode.
fn put_chunked<T: PersistCoded>(seg: &mut Vec<u8>, col: &Chunked<T>) {
    let (shift, chunks, stats, tail) = col.parts();
    put_u32(seg, shift);
    put_u32(seg, chunks.len() as u32);
    for (chunk, &(lo, hi)) in chunks.iter().zip(stats) {
        match chunk {
            EncChunk::Plain(v) => {
                seg.push(0);
                T::put(seg, lo);
                T::put(seg, hi);
                for &x in v {
                    T::put(seg, x);
                }
            }
            EncChunk::Packed { min, width, words } => {
                seg.push(1);
                T::put(seg, lo);
                T::put(seg, hi);
                T::put(seg, *min);
                put_u32(seg, *width);
                put_u32(seg, words.len() as u32);
                for &w in words {
                    put_u64(seg, w);
                }
            }
            EncChunk::Rle(runs) => {
                seg.push(2);
                T::put(seg, lo);
                T::put(seg, hi);
                put_u32(seg, runs.len() as u32);
                for &(v, e) in runs {
                    T::put(seg, v);
                    seg.extend_from_slice(&e.to_le_bytes());
                }
            }
        }
    }
    put_u32(seg, tail.len() as u32);
    for &x in tail {
        T::put(seg, x);
    }
}

/// Decode a packed chunk store of exactly `rows` values, validating
/// structure exhaustively (see the module docs). `check` bounds every
/// stored value (dictionary codes); packed chunks are bounds-scanned
/// via delta extraction without materializing.
fn take_chunked<T: PersistCoded>(
    c: &mut Cursor<'_>,
    rows: usize,
    check: impl Fn(T) -> bool,
) -> Result<Chunked<T>, StorageError> {
    let shift = c.u32()?;
    if shift > 12 {
        return Err(malformed(format!("chunk shift {shift} out of range")));
    }
    let chunk_rows = 1usize << shift;
    let n_chunks = c.u32()? as usize;
    let checked = |v: T| {
        if check(v) {
            Ok(v)
        } else {
            Err(malformed(format!("column value {v:?} out of range")))
        }
    };
    let mut chunks = Vec::with_capacity(n_chunks);
    let mut stats = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let tag = c.u8()?;
        let lo = T::take(c)?;
        let hi = T::take(c)?;
        let chunk = match tag {
            0 => {
                let mut v = Vec::with_capacity(chunk_rows);
                for _ in 0..chunk_rows {
                    v.push(checked(T::take(c)?)?);
                }
                EncChunk::Plain(v)
            }
            1 => {
                let min = T::take(c)?;
                let width = c.u32()?;
                let n_words = c.u32()? as usize;
                if width > 64 || n_words != (chunk_rows * width as usize).div_ceil(64) {
                    return Err(malformed(format!(
                        "packed chunk geometry invalid (width {width}, {n_words} words)"
                    )));
                }
                let mut words = Vec::with_capacity(n_words);
                for _ in 0..n_words {
                    words.push(c.u64()?);
                }
                if width == 0 {
                    checked(min)?;
                } else {
                    for i in 0..chunk_rows {
                        checked(T::from_delta(min, packed_delta(&words, width, i)))?;
                    }
                }
                EncChunk::Packed { min, width, words }
            }
            2 => {
                let n_runs = c.u32()? as usize;
                if n_runs == 0 || n_runs > chunk_rows {
                    return Err(malformed(format!("RLE run count {n_runs} invalid")));
                }
                let mut runs: Vec<(T, u16)> = Vec::with_capacity(n_runs);
                let mut prev_end = 0usize;
                for _ in 0..n_runs {
                    let v = checked(T::take(c)?)?;
                    let end = u16::from_le_bytes(c.take(2)?.try_into().unwrap());
                    if (end as usize) <= prev_end || (end as usize) > chunk_rows {
                        return Err(malformed("RLE run ends not strictly increasing"));
                    }
                    prev_end = end as usize;
                    runs.push((v, end));
                }
                if prev_end != chunk_rows {
                    return Err(malformed("RLE runs do not cover the chunk"));
                }
                EncChunk::Rle(runs)
            }
            other => return Err(malformed(format!("unknown chunk encoding tag {other}"))),
        };
        chunks.push(chunk);
        stats.push((lo, hi));
    }
    let tail_len = c.u32()? as usize;
    if tail_len >= chunk_rows || (n_chunks << shift) + tail_len != rows {
        return Err(malformed(format!(
            "chunk store rows ({} sealed + {tail_len} tail) disagree with row count {rows}",
            n_chunks << shift
        )));
    }
    let mut tail = Vec::with_capacity(tail_len);
    for _ in 0..tail_len {
        tail.push(checked(T::take(c)?)?);
    }
    Ok(Chunked::from_parts(
        shift,
        EncodePolicy::from_env().mode,
        chunks,
        stats,
        tail,
    ))
}

fn encode_segment(col: &Column) -> Vec<u8> {
    let mut seg = Vec::new();
    match col {
        Column::Int(v) => put_chunked(&mut seg, v),
        Column::Float(v) => {
            seg.reserve(v.len() * 8);
            for &x in v {
                seg.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        Column::Cat(c) => {
            put_u64(&mut seg, c.dict().len() as u64);
            for s in c.dict() {
                put_str(&mut seg, s);
            }
            put_chunked(&mut seg, c.codes());
        }
    }
    seg
}

/// Decode the dictionary block of a Cat segment (shared by v1 and v2).
fn take_dict(c: &mut Cursor<'_>) -> Result<(Vec<String>, CatColumn), StorageError> {
    let dict_len = c.u64()? as usize;
    let mut cat = CatColumn::new();
    let mut dict = Vec::with_capacity(dict_len);
    for i in 0..dict_len {
        let s = c.str()?;
        if cat.intern(s) as usize != i {
            return Err(malformed(format!("duplicate dictionary entry {s:?}")));
        }
        dict.push(s.to_string());
    }
    Ok((dict, cat))
}

fn decode_segment(
    bytes: &[u8],
    dtype: DataType,
    rows: usize,
    fmt: u32,
) -> Result<Column, StorageError> {
    let mut c = Cursor::new(bytes);
    let col = match dtype {
        DataType::Int if fmt == 1 => {
            // v1: plain value array, re-chunked under the current policy.
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(c.i64()?);
            }
            Column::Int(IntColumn::from_vec(v, EncodePolicy::from_env()))
        }
        DataType::Int => Column::Int(take_chunked(&mut c, rows, |_| true)?),
        DataType::Float => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(c.f64()?);
            }
            Column::Float(v)
        }
        DataType::Cat if fmt == 1 => {
            let (_, mut cat) = take_dict(&mut c)?;
            let dict_len = cat.cardinality();
            for _ in 0..rows {
                let code = c.u32()?;
                if code as usize >= dict_len {
                    return Err(malformed(format!(
                        "code {code} out of dictionary range {dict_len}"
                    )));
                }
                cat.push_code(code);
            }
            Column::Cat(cat)
        }
        DataType::Cat => {
            let (dict, _) = take_dict(&mut c)?;
            let dict_len = dict.len();
            let codes = take_chunked(&mut c, rows, |code: u32| (code as usize) < dict_len)?;
            Column::Cat(CatColumn::from_parts(dict, codes))
        }
    };
    if !c.done() {
        return Err(malformed("trailing bytes after column segment"));
    }
    Ok(col)
}

/// Serialize a pinned table snapshot to the `.zvt` byte layout (see
/// the module docs). Pure — writing, fsyncing, and renaming are
/// [`Persistence::checkpoint`]'s job.
pub fn encode_snapshot(table: &Table) -> Vec<u8> {
    let fields = table.schema().fields();
    let segs: Vec<Vec<u8>> = (0..fields.len())
        .map(|i| encode_segment(table.column_at(i)))
        .collect();
    let mut meta = Vec::new();
    put_u64(&mut meta, table.version());
    put_u64(&mut meta, table.num_rows() as u64);
    put_u32(&mut meta, fields.len() as u32);
    for (f, seg) in fields.iter().zip(&segs) {
        meta.push(dtype_tag(f.dtype));
        put_str(&mut meta, &f.name);
        put_u64(&mut meta, seg.len() as u64);
        put_u32(&mut meta, crc32(seg));
    }
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, meta.len() as u32);
    out.extend_from_slice(&meta);
    put_u32(&mut out, crc32(&meta));
    for seg in &segs {
        out.extend_from_slice(seg);
    }
    out
}

/// Deserialize and fully verify a `.zvt` snapshot: magic, format
/// version, meta CRC, per-segment CRCs, dictionary-code bounds, and
/// exact length accounting all must hold — a snapshot either decodes
/// bit-for-bit or is rejected whole, never partially served. The
/// returned table carries its durable version.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Table, StorageError> {
    if bytes.len() < 12 || bytes[..4] != SNAPSHOT_MAGIC {
        return Err(malformed("not a zv snapshot (bad magic)"));
    }
    let mut head = Cursor::new(&bytes[4..12]);
    let fmt = head.u32()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&fmt) {
        return Err(malformed(format!(
            "snapshot format {fmt} unsupported (want {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
        )));
    }
    let meta_len = head.u32()? as usize;
    let meta_end = 12usize
        .checked_add(meta_len)
        .filter(|&e| e + 4 <= bytes.len())
        .ok_or_else(|| malformed("snapshot meta block truncated"))?;
    let meta = &bytes[12..meta_end];
    let stored_crc = u32::from_le_bytes(bytes[meta_end..meta_end + 4].try_into().unwrap());
    if crc32(meta) != stored_crc {
        return Err(malformed("snapshot meta CRC mismatch"));
    }
    let mut m = Cursor::new(meta);
    let version = m.u64()?;
    let rows = m.u64()? as usize;
    let n_cols = m.u32()? as usize;
    let mut fields = Vec::with_capacity(n_cols);
    let mut dirs = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let dtype = tag_dtype(m.u8()?)?;
        let name = m.str()?.to_string();
        let seg_len = m.u64()? as usize;
        let seg_crc = m.u32()?;
        fields.push(Field::new(name, dtype));
        dirs.push((seg_len, seg_crc));
    }
    if !m.done() {
        return Err(malformed("trailing bytes in snapshot meta block"));
    }
    let mut offset = meta_end + 4;
    let mut columns = Vec::with_capacity(n_cols);
    for (f, &(seg_len, seg_crc)) in fields.iter().zip(&dirs) {
        let end = offset
            .checked_add(seg_len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| malformed("snapshot segment truncated"))?;
        let seg = &bytes[offset..end];
        if crc32(seg) != seg_crc {
            return Err(malformed(format!(
                "segment CRC mismatch in column {}",
                f.name
            )));
        }
        columns.push(decode_segment(seg, f.dtype, rows, fmt)?);
        offset = end;
    }
    if offset != bytes.len() {
        return Err(malformed("trailing bytes after last snapshot segment"));
    }
    let mut table = Table::from_columns(Schema::new(fields), columns)
        .map_err(|e| malformed(format!("snapshot columns inconsistent: {e}")))?;
    if table.num_rows() != rows {
        return Err(malformed("snapshot row count disagrees with segments"));
    }
    table.restore_version(version);
    Ok(table)
}

// ---------------------------------------------------------------------
// WAL encode/decode
// ---------------------------------------------------------------------

/// The error an append batch gets when its encoded body would exceed
/// [`MAX_WAL_FRAME`]. Enforced on the **write** path: replay treats any
/// length above the cap as torn garbage and truncates there, so a
/// larger frame, once written and acked, would be silently dropped on
/// the next open together with everything after it — the batch must
/// fail *now* instead.
fn oversized_batch(encoded: usize) -> StorageError {
    StorageError::Malformed(format!(
        "append batch encodes to over {encoded} bytes, above the {MAX_WAL_FRAME}-byte \
         WAL frame cap — split it into smaller appends"
    ))
}

/// Wrap an encoded body into a full frame (`[len | body | CRC]`),
/// rejecting bodies over [`MAX_WAL_FRAME`] so no unrecoverable frame
/// can ever reach the log.
fn seal_wal_frame(body: Vec<u8>) -> Result<Vec<u8>, StorageError> {
    if body.len() > MAX_WAL_FRAME {
        return Err(oversized_batch(body.len()));
    }
    let mut frame = Vec::with_capacity(body.len() + 8);
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    put_u32(&mut frame, crc32(&body));
    Ok(frame)
}

/// Encode one committed append batch as a full WAL frame
/// (`[len | version | payload | CRC]`). Values are coerced to the
/// schema dtype exactly as [`Table::append_rows`] stores them, so
/// replay reconstructs the identical column bytes. Batches whose body
/// would exceed [`MAX_WAL_FRAME`] are rejected (checked per row, so an
/// absurd batch fails fast instead of encoding gigabytes first).
pub fn encode_wal_frame(
    version: u64,
    schema: &Schema,
    rows: &[Vec<Value>],
) -> Result<Vec<u8>, StorageError> {
    let mut body = Vec::new();
    put_u64(&mut body, version);
    put_u32(&mut body, rows.len() as u32);
    for row in rows {
        if row.len() != schema.len() {
            return Err(StorageError::Malformed(format!(
                "WAL row width {} != schema width {}",
                row.len(),
                schema.len()
            )));
        }
        for (f, v) in schema.fields().iter().zip(row) {
            match (f.dtype, v) {
                (DataType::Int, Value::Int(i)) => body.extend_from_slice(&i.to_le_bytes()),
                (DataType::Int, Value::Float(x)) => {
                    body.extend_from_slice(&(*x as i64).to_le_bytes())
                }
                (DataType::Float, Value::Float(x)) => {
                    body.extend_from_slice(&x.to_bits().to_le_bytes())
                }
                (DataType::Float, Value::Int(i)) => {
                    body.extend_from_slice(&(*i as f64).to_bits().to_le_bytes())
                }
                (DataType::Cat, Value::Str(s)) => put_str(&mut body, s),
                (dtype, v) => {
                    return Err(StorageError::TypeMismatch(format!(
                        "cannot log {v:?} into {dtype} WAL column"
                    )))
                }
            }
        }
        if body.len() > MAX_WAL_FRAME {
            return Err(oversized_batch(body.len()));
        }
    }
    seal_wal_frame(body)
}

/// Encode an `append_table` batch as a WAL frame straight from the
/// source table's columns — byte-identical to [`encode_wal_frame`]
/// over `src`'s rows, without materializing a `Value` per cell (an
/// engine-level bulk append would otherwise hold a row-major copy of
/// the whole table while blocking every other append).
pub fn encode_wal_frame_from_table(version: u64, src: &Table) -> Result<Vec<u8>, StorageError> {
    let cols = (0..src.schema().len())
        .map(|i| src.column_at(i))
        .collect::<Vec<_>>();
    let mut body = Vec::new();
    put_u64(&mut body, version);
    put_u32(&mut body, src.num_rows() as u32);
    for row in 0..src.num_rows() {
        for col in &cols {
            match col {
                Column::Int(v) => body.extend_from_slice(&v.get(row).to_le_bytes()),
                Column::Float(v) => body.extend_from_slice(&v[row].to_bits().to_le_bytes()),
                Column::Cat(c) => put_str(&mut body, &c.dict()[c.code_at(row) as usize]),
            }
        }
        if body.len() > MAX_WAL_FRAME {
            return Err(oversized_batch(body.len()));
        }
    }
    seal_wal_frame(body)
}

/// Decode a CRC-verified frame body (`version` + payload, i.e. the
/// `L` bytes after the length word) against `schema`.
fn decode_wal_body(body: &[u8], schema: &Schema) -> Result<(u64, Vec<Vec<Value>>), StorageError> {
    let mut c = Cursor::new(body);
    let version = c.u64()?;
    let n_rows = c.u32()? as usize;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let mut row = Vec::with_capacity(schema.len());
        for f in schema.fields() {
            row.push(match f.dtype {
                DataType::Int => Value::Int(c.i64()?),
                DataType::Float => Value::Float(c.f64()?),
                DataType::Cat => Value::Str(c.str()?.to_string()),
            });
        }
        rows.push(row);
    }
    if !c.done() {
        return Err(malformed("trailing bytes in WAL frame payload"));
    }
    Ok((version, rows))
}

// ---------------------------------------------------------------------
// Persistence: the handle an engine holds on its data directory
// ---------------------------------------------------------------------

/// Configuration for [`Persistence::open`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PersistOptions {
    /// Disk-path fault injection ([`FaultPoint::DiskWriteFail`] /
    /// [`FaultPoint::FsyncFail`] / [`FaultPoint::CrashBeforeRename`] /
    /// [`FaultPoint::WalTearTail`]); disabled outside chaos runs.
    pub fault: FaultSpec,
}

/// What [`Persistence::open`] found and did — one immutable report per
/// open, so chaos ledgers can assert recovery byte-for-byte.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Version of the snapshot file recovery loaded (`None` = fresh
    /// directory, nothing durable yet).
    pub snapshot_version: Option<u64>,
    /// The exact table version recovery ended at (snapshot version
    /// advanced by replayed WAL frames).
    pub recovered_version: Option<u64>,
    /// CRC-valid WAL frames applied on top of the snapshot.
    pub frames_replayed: u64,
    /// Rows those frames appended.
    pub rows_replayed: u64,
    /// CRC-valid frames skipped because their version was already
    /// covered by the snapshot (crash between rename and WAL reset).
    pub stale_frames_skipped: u64,
    /// Torn/corrupt tail bytes truncated off the WAL (never served).
    pub torn_bytes_truncated: u64,
    /// Snapshot files rejected by CRC/format verification — or
    /// unreadable outright — and skipped in favour of an older one.
    pub corrupt_snapshots_skipped: u64,
    /// `.tmp` leftovers of interrupted checkpoints deleted.
    pub tmp_files_removed: u64,
}

/// Monotone write-path counters (see [`Persistence::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    pub snapshots_written: u64,
    /// Superseded snapshot files deleted after a checkpoint.
    pub snapshots_pruned: u64,
    pub wal_appends: u64,
    pub wal_bytes_appended: u64,
    /// Appends that failed (injected or real I/O); each left the
    /// in-memory table unchanged.
    pub wal_append_failures: u64,
    pub checkpoint_failures: u64,
}

struct WalHandle {
    file: File,
    /// Length of the durable, CRC-valid prefix — everything at or past
    /// this offset is torn garbage awaiting truncation.
    len: u64,
}

/// A handle on one data directory: the open WAL plus the bookkeeping
/// to checkpoint and recover it. Engines own one behind an `Arc` (see
/// `ScanDb::open_durable` / `BitmapDb::open_durable`); every committed
/// `append_rows` batch is logged (and fsynced) *before* the new
/// snapshot becomes visible in memory, so the in-memory version is
/// always a durable version.
pub struct Persistence {
    dir: PathBuf,
    fault: FaultSpec,
    wal: Mutex<WalHandle>,
    /// Set when a fault left torn bytes on the WAL tail: further
    /// appends fail fast (the tail would corrupt mid-log) until a
    /// successful [`Persistence::checkpoint`] resets the log.
    wal_dead: AtomicBool,
    recovery: RecoveryReport,
    write_seq: AtomicU64,
    fsync_seq: AtomicU64,
    checkpoint_seq: AtomicU64,
    append_seq: AtomicU64,
    snapshots_written: AtomicU64,
    snapshots_pruned: AtomicU64,
    wal_appends: AtomicU64,
    wal_bytes_appended: AtomicU64,
    wal_append_failures: AtomicU64,
    checkpoint_failures: AtomicU64,
}

impl Persistence {
    /// Open (creating if needed) a data directory and recover its
    /// durable state: newest valid snapshot + WAL replay, torn tail
    /// truncated. Returns the handle and the recovered table (`None`
    /// for a fresh directory — the caller seeds an initial table and
    /// checkpoints it).
    pub fn open(
        dir: impl AsRef<Path>,
        opts: PersistOptions,
    ) -> Result<(Persistence, Option<Table>), StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create data dir", e))?;
        let mut report = RecoveryReport::default();

        // Sweep the directory: collect snapshot candidates, remove
        // `.tmp` leftovers of interrupted checkpoints.
        let mut snapshots: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| io_err("read data dir", e))? {
            let entry = entry.map_err(|e| io_err("read data dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                fs::remove_file(entry.path()).map_err(|e| io_err("remove tmp file", e))?;
                report.tmp_files_removed += 1;
            } else if let Some(v) = name
                .strip_prefix(SNAPSHOT_PREFIX)
                .and_then(|s| s.strip_suffix(SNAPSHOT_SUFFIX))
                .and_then(|s| s.parse::<u64>().ok())
            {
                snapshots.push((v, entry.path()));
            }
        }
        // Newest first; fall back to older snapshots on corruption.
        snapshots.sort_by_key(|s| std::cmp::Reverse(s.0));
        let mut table: Option<Table> = None;
        for (_, path) in &snapshots {
            // An unreadable candidate (I/O error, permissions) is the
            // same damaged-newest-snapshot situation as a CRC failure:
            // count it and fall back to the next-older snapshot rather
            // than aborting recovery outright.
            let decoded = fs::read(path)
                .map_err(|e| io_err("read snapshot", e))
                .and_then(|bytes| decode_snapshot(&bytes));
            match decoded {
                Ok(t) => {
                    report.snapshot_version = Some(t.version());
                    table = Some(t);
                    break;
                }
                Err(_) => report.corrupt_snapshots_skipped += 1,
            }
        }

        // Open the WAL and replay it on top of the snapshot.
        let wal_path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)
            .map_err(|e| io_err("open wal", e))?;
        let mut wal_bytes = Vec::new();
        file.read_to_end(&mut wal_bytes)
            .map_err(|e| io_err("read wal", e))?;
        let durable_len = match &mut table {
            Some(t) => Self::replay_wal(&wal_bytes, t, &mut report)?,
            None if wal_bytes.is_empty() => 0,
            None => {
                // A WAL with no base snapshot cannot be replayed; the
                // directory is unusable, not quietly resettable.
                return Err(malformed(format!(
                    "{} has a WAL but no readable snapshot — refusing to discard data",
                    dir.display()
                )));
            }
        };
        if durable_len < wal_bytes.len() as u64 {
            report.torn_bytes_truncated = wal_bytes.len() as u64 - durable_len;
            file.set_len(durable_len)
                .map_err(|e| io_err("truncate torn wal tail", e))?;
            file.sync_data().map_err(|e| io_err("fsync wal", e))?;
        }
        file.seek(SeekFrom::Start(durable_len))
            .map_err(|e| io_err("seek wal", e))?;
        report.recovered_version = table.as_ref().map(Table::version);

        let persistence = Persistence {
            dir,
            fault: opts.fault,
            wal: Mutex::new(WalHandle {
                file,
                len: durable_len,
            }),
            wal_dead: AtomicBool::new(false),
            recovery: report,
            write_seq: AtomicU64::new(0),
            fsync_seq: AtomicU64::new(0),
            checkpoint_seq: AtomicU64::new(0),
            append_seq: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            snapshots_pruned: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_bytes_appended: AtomicU64::new(0),
            wal_append_failures: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
        };
        Ok((persistence, table))
    }

    /// Replay `wal_bytes` onto `table`, returning the length of the
    /// durable prefix (everything past it is torn/corrupt and must be
    /// truncated). Frames at or below the current table version are
    /// skipped as stale; applied frames restore their exact recorded
    /// version.
    fn replay_wal(
        wal_bytes: &[u8],
        table: &mut Table,
        report: &mut RecoveryReport,
    ) -> Result<u64, StorageError> {
        let mut pos = 0usize;
        loop {
            let rest = &wal_bytes[pos..];
            if rest.is_empty() {
                return Ok(pos as u64);
            }
            if rest.len() < 4 {
                return Ok(pos as u64); // torn inside the length word
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            // A frame body is at least version (8) + row count (4); an
            // insane length is indistinguishable from torn garbage.
            if !(12..=MAX_WAL_FRAME).contains(&len) || rest.len() < 4 + len + 4 {
                return Ok(pos as u64);
            }
            let body = &rest[4..4 + len];
            let stored_crc = u32::from_le_bytes(rest[4 + len..4 + len + 4].try_into().unwrap());
            if crc32(body) != stored_crc {
                return Ok(pos as u64); // corrupt tail starts here
            }
            let (version, rows) = decode_wal_body(body, table.schema())?;
            if version <= table.version() {
                report.stale_frames_skipped += 1;
            } else {
                let n = table.append_rows(&rows)?;
                table.restore_version(version);
                report.frames_replayed += 1;
                report.rows_replayed += n as u64;
            }
            pos += 4 + len + 4;
        }
    }

    /// The directory this handle owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the append log inside [`Persistence::dir`].
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// What recovery found and did when this handle was opened.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery
    }

    /// Point-in-time copy of the write-path counters.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            snapshots_pruned: self.snapshots_pruned.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes_appended: self.wal_bytes_appended.load(Ordering::Relaxed),
            wal_append_failures: self.wal_append_failures.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
        }
    }

    /// True when a fault poisoned the WAL tail: appends fail fast
    /// until a successful [`Persistence::checkpoint`] resets the log.
    pub fn wal_poisoned(&self) -> bool {
        self.wal_dead.load(Ordering::SeqCst)
    }

    fn faulted_fsync(&self, file: &File, what: &str) -> Result<(), StorageError> {
        let seq = self.fsync_seq.fetch_add(1, Ordering::Relaxed);
        if self.fault.fires(FaultPoint::FsyncFail, seq, 0) {
            return Err(StorageError::Io(format!(
                "injected fsync failure on {what} (fsync #{seq})"
            )));
        }
        file.sync_data()
            .map_err(|e| io_err(&format!("fsync {what}"), e))
    }

    /// Log one committed append batch: frame, write, fsync — all
    /// before the caller makes the new table visible. On *any*
    /// failure the frame is rolled back (or the log poisoned when
    /// torn bytes are already on disk) and the caller must abort the
    /// in-memory mutation, so disk and memory always agree on the
    /// durable history. A batch that encodes past [`MAX_WAL_FRAME`]
    /// fails here, before any byte is written — replay would truncate
    /// a larger frame as torn garbage, silently dropping acknowledged
    /// data.
    pub fn log_append(
        &self,
        version: u64,
        schema: &Schema,
        rows: &[Vec<Value>],
    ) -> Result<(), StorageError> {
        if rows.is_empty() {
            return Ok(());
        }
        self.ensure_wal_alive()?;
        let frame = self.encode_counted(|| encode_wal_frame(version, schema, rows))?;
        self.log_frame(frame)
    }

    /// [`Persistence::log_append`] for an `append_table` batch: the
    /// frame is encoded straight from `src`'s columns (see
    /// [`encode_wal_frame_from_table`]), so bulk appends don't triple
    /// their peak memory materializing per-row `Value`s under the
    /// engine's append lock.
    pub fn log_append_table(&self, version: u64, src: &Table) -> Result<(), StorageError> {
        if src.num_rows() == 0 {
            return Ok(());
        }
        self.ensure_wal_alive()?;
        let frame = self.encode_counted(|| encode_wal_frame_from_table(version, src))?;
        self.log_frame(frame)
    }

    fn ensure_wal_alive(&self) -> Result<(), StorageError> {
        if self.wal_dead.load(Ordering::SeqCst) {
            self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Io(
                "WAL tail is poisoned by an earlier disk fault; checkpoint to reset it".into(),
            ));
        }
        Ok(())
    }

    /// Run a frame encoder, booking a rejected batch (oversized, type
    /// mismatch) as an append failure — the in-memory table stays
    /// unchanged, exactly like an I/O failure.
    fn encode_counted(
        &self,
        encode: impl FnOnce() -> Result<Vec<u8>, StorageError>,
    ) -> Result<Vec<u8>, StorageError> {
        encode().inspect_err(|_| {
            self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
        })
    }

    fn log_frame(&self, frame: Vec<u8>) -> Result<(), StorageError> {
        let mut wal = lock_recover(&self.wal);
        let seq = self.append_seq.fetch_add(1, Ordering::Relaxed);
        if self.fault.fires(FaultPoint::WalTearTail, seq, 0) {
            // Crash mid-append: a prefix of the frame really lands on
            // disk. The log is now poisoned fail-stop — recovery (or a
            // checkpoint) is the only way forward.
            let torn = wal_tear_offset(self.fault.seed, seq, frame.len());
            let _ = wal.file.write_all(&frame[..torn]);
            let _ = wal.file.sync_data();
            self.wal_dead.store(true, Ordering::SeqCst);
            self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Io(format!(
                "injected torn WAL append #{seq}: {torn} of {} bytes reached disk",
                frame.len()
            )));
        }
        let write_then_sync = (|| -> Result<(), StorageError> {
            wal.file
                .write_all(&frame)
                .map_err(|e| io_err("append wal frame", e))?;
            self.faulted_fsync(&wal.file, "wal")
        })();
        if let Err(e) = write_then_sync {
            // Roll the partial/unsynced frame back so the durable
            // prefix matches what the caller will report as committed.
            self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
            let durable = wal.len;
            let rolled_back = wal.file.set_len(durable).is_ok()
                && wal.file.seek(SeekFrom::Start(durable)).is_ok()
                && wal.file.sync_data().is_ok();
            if !rolled_back {
                self.wal_dead.store(true, Ordering::SeqCst);
            }
            return Err(e);
        }
        wal.len += frame.len() as u64;
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes_appended
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Write a full snapshot of `table` atomically (temp file → fsync
    /// → rename → dir sync), then reset the WAL (its frames are now
    /// covered) and prune superseded snapshot files. Callers must
    /// serialize against appends (the engines hold their `append_lock`
    /// across the pin + checkpoint) so no committed frame newer than
    /// `table` can be discarded.
    pub fn checkpoint(&self, table: &Table) -> Result<PathBuf, StorageError> {
        let result = self.checkpoint_inner(table);
        if result.is_err() {
            self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn checkpoint_inner(&self, table: &Table) -> Result<PathBuf, StorageError> {
        let bytes = encode_snapshot(table);
        let final_name = format!("{SNAPSHOT_PREFIX}{:020}{SNAPSHOT_SUFFIX}", table.version());
        let final_path = self.dir.join(&final_name);
        let tmp_path = self.dir.join(format!("{final_name}.tmp"));
        let mut tmp = File::create(&tmp_path).map_err(|e| io_err("create snapshot tmp", e))?;
        let wseq = self.write_seq.fetch_add(1, Ordering::Relaxed);
        if self.fault.fires(FaultPoint::DiskWriteFail, wseq, 0) {
            // Short write: half the bytes land, then the disk errors.
            // The damaged tmp is left for the next open to sweep.
            let _ = tmp.write_all(&bytes[..bytes.len() / 2]);
            return Err(StorageError::Io(format!(
                "injected short snapshot write #{wseq}: {} of {} bytes reached disk",
                bytes.len() / 2,
                bytes.len()
            )));
        }
        tmp.write_all(&bytes)
            .map_err(|e| io_err("write snapshot", e))?;
        self.faulted_fsync(&tmp, "snapshot tmp")?;
        let cseq = self.checkpoint_seq.fetch_add(1, Ordering::Relaxed);
        if self.fault.fires(FaultPoint::CrashBeforeRename, cseq, 0) {
            // The complete, fsynced tmp exists but was never renamed —
            // exactly the state a crash between the two leaves behind.
            return Err(StorageError::Io(format!(
                "injected crash before snapshot rename (checkpoint #{cseq})"
            )));
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err("rename snapshot", e))?;
        // Make the rename itself durable before touching the WAL.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        // Every WAL frame is ≤ the snapshot version now (checkpoint is
        // serialized against appends): reset the log and lift any
        // fail-stop poisoning.
        {
            let mut wal = lock_recover(&self.wal);
            wal.file
                .set_len(0)
                .map_err(|e| io_err("reset wal after checkpoint", e))?;
            wal.file
                .seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek wal", e))?;
            wal.file.sync_data().map_err(|e| io_err("fsync wal", e))?;
            wal.len = 0;
            self.wal_dead.store(false, Ordering::SeqCst);
        }
        // Prune superseded snapshots (best-effort; recovery would pick
        // the newest valid one regardless).
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let stale = name
                    .strip_prefix(SNAPSHOT_PREFIX)
                    .and_then(|s| s.strip_suffix(SNAPSHOT_SUFFIX))
                    .and_then(|s| s.parse::<u64>().ok())
                    .is_some_and(|v| v < table.version());
                if stale && fs::remove_file(entry.path()).is_ok() {
                    self.snapshots_pruned.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        Ok(final_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "zv-persist-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (y, p, s) in [
            (2014, "chair", 10.25),
            (2015, "desk", -7.5),
            (2014, "desk", 0.125),
            (2016, "chair", 3.0),
        ] {
            b.push_row(vec![Value::Int(y), Value::str(p), Value::Float(s)])
                .unwrap();
        }
        b.finish()
    }

    fn assert_tables_identical(a: &Table, b: &Table) {
        assert_eq!(a.version(), b.version(), "versions must match");
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        for i in 0..a.schema().len() {
            match (a.column_at(i), b.column_at(i)) {
                (Column::Int(x), Column::Int(y)) => assert_eq!(x, y),
                (Column::Float(x), Column::Float(y)) => {
                    let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                    let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(xb, yb, "float column {i} must round-trip bit-for-bit");
                }
                (Column::Cat(x), Column::Cat(y)) => {
                    assert_eq!(x.dict(), y.dict(), "dictionary order must survive");
                    assert_eq!(x.codes(), y.codes());
                }
                _ => panic!("column {i} changed type"),
            }
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn snapshot_roundtrips_bit_for_bit() {
        let t = sample_table();
        let restored = decode_snapshot(&encode_snapshot(&t)).unwrap();
        assert_tables_identical(&t, &restored);
    }

    #[test]
    fn snapshot_rejects_any_flipped_byte() {
        let t = sample_table();
        let bytes = encode_snapshot(&t);
        // Every single-byte corruption must be detected (magic, format,
        // meta CRC, or a segment CRC catches it).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_snapshot(&bad).is_err(),
                "flipping byte {i} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn fresh_dir_then_appends_recover_exactly() {
        let dir = temp_dir("fresh");
        let t = sample_table();
        let (p, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        assert!(recovered.is_none(), "fresh dir has nothing to recover");
        p.checkpoint(&t).unwrap();

        let mut live = t.clone();
        let batch = vec![vec![
            Value::Int(2017),
            Value::str("lamp"),
            Value::Float(1.5),
        ]];
        live.append_rows(&batch).unwrap();
        p.log_append(live.version(), live.schema(), &batch).unwrap();
        let batch2 = vec![
            vec![Value::Int(2018), Value::str("desk"), Value::Float(2.5)],
            vec![Value::Int(2018), Value::str("sofa"), Value::Float(9.0)],
        ];
        live.append_rows(&batch2).unwrap();
        p.log_append(live.version(), live.schema(), &batch2)
            .unwrap();
        drop(p);

        let (p2, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        let recovered = recovered.expect("snapshot + wal must recover");
        assert_tables_identical(&live, &recovered);
        let report = p2.recovery_report();
        assert_eq!(report.snapshot_version, Some(t.version()));
        assert_eq!(report.recovered_version, Some(live.version()));
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(report.rows_replayed, 3);
        assert_eq!(report.torn_bytes_truncated, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_truncated_not_served() {
        let dir = temp_dir("torn");
        let t = sample_table();
        let (p, _) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        p.checkpoint(&t).unwrap();
        let mut live = t.clone();
        let batch = vec![vec![Value::Int(2019), Value::str("rug"), Value::Float(4.5)]];
        live.append_rows(&batch).unwrap();
        p.log_append(live.version(), live.schema(), &batch).unwrap();
        let wal_path = p.wal_path();
        drop(p);

        // Tear 3 bytes off the committed frame: the whole frame must go.
        let full = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &full[..full.len() - 3]).unwrap();
        let (p2, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        let recovered = recovered.unwrap();
        assert_tables_identical(&t, &recovered);
        assert_eq!(p2.recovery_report().frames_replayed, 0);
        assert_eq!(
            p2.recovery_report().torn_bytes_truncated,
            full.len() as u64 - 3
        );
        assert_eq!(
            fs::metadata(&wal_path).unwrap().len(),
            0,
            "torn tail must be truncated on disk"
        );
        drop(p2);

        // Corrupt (not torn) tail: flip a payload byte so the CRC fails.
        fs::write(&wal_path, &full).unwrap();
        let mut corrupt = full.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        fs::write(&wal_path, &corrupt).unwrap();
        let (p3, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        assert_tables_identical(&t, &recovered.unwrap());
        assert_eq!(p3.recovery_report().frames_replayed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_resets_wal_and_prunes_old_snapshots() {
        let dir = temp_dir("ckpt");
        let t = sample_table();
        let (p, _) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        p.checkpoint(&t).unwrap();
        let mut live = t.clone();
        let batch = vec![vec![
            Value::Int(2020),
            Value::str("desk"),
            Value::Float(8.0),
        ]];
        live.append_rows(&batch).unwrap();
        p.log_append(live.version(), live.schema(), &batch).unwrap();
        assert!(fs::metadata(p.wal_path()).unwrap().len() > 0);
        p.checkpoint(&live).unwrap();
        assert_eq!(fs::metadata(p.wal_path()).unwrap().len(), 0);
        let snaps: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(SNAPSHOT_SUFFIX))
            .collect();
        assert_eq!(snaps.len(), 1, "old snapshot must be pruned: {snaps:?}");
        assert!(snaps[0].contains(&format!("{:020}", live.version())));
        assert_eq!(p.stats().snapshots_pruned, 1);
        drop(p);
        let (_, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        assert_tables_identical(&live, &recovered.unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_without_snapshot_refuses_to_open() {
        let dir = temp_dir("orphan-wal");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(WAL_FILE), b"\x10\x00\x00\x00garbage").unwrap();
        let Err(err) = Persistence::open(&dir, PersistOptions::default()) else {
            panic!("orphan WAL must refuse to open");
        };
        assert!(matches!(err, StorageError::Io(_)), "got {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older() {
        let dir = temp_dir("fallback");
        let t = sample_table();
        let (p, _) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        p.checkpoint(&t).unwrap();
        // Write a newer, corrupt snapshot by hand.
        let mut newer = t.clone();
        newer
            .append_rows(&[vec![Value::Int(1), Value::str("x"), Value::Float(0.0)]])
            .unwrap();
        let mut bytes = encode_snapshot(&newer);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(
            dir.join(format!(
                "{SNAPSHOT_PREFIX}{:020}{SNAPSHOT_SUFFIX}",
                newer.version()
            )),
            &bytes,
        )
        .unwrap();
        drop(p);
        let (p2, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        assert_tables_identical(&t, &recovered.unwrap());
        assert_eq!(p2.recovery_report().corrupt_snapshots_skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_batch_fails_the_append_instead_of_poisoning_recovery() {
        let dir = temp_dir("oversized");
        let t = sample_table();
        let (p, _) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        p.checkpoint(&t).unwrap();
        let mut live = t.clone();

        // One row whose Cat value alone blows past MAX_WAL_FRAME. If
        // this frame reached the log, it would be fsynced and acked,
        // then truncated as torn garbage on the next open — silent loss
        // of acknowledged data. It must fail the append instead.
        let giant = vec![vec![
            Value::Int(2021),
            Value::Str("x".repeat(MAX_WAL_FRAME + 1)),
            Value::Float(1.0),
        ]];
        let err = p
            .log_append(live.version() + 1, live.schema(), &giant)
            .expect_err("oversized batch must be rejected");
        assert!(matches!(err, StorageError::Malformed(_)), "got {err:?}");
        assert_eq!(p.stats().wal_append_failures, 1);
        assert_eq!(
            fs::metadata(p.wal_path()).unwrap().len(),
            0,
            "no byte of the rejected batch may reach the log"
        );
        assert!(!p.wal_poisoned(), "a rejected encode never touched disk");

        // The log keeps working: a normal append after the rejection is
        // durable and recovery lands on it exactly.
        let batch = vec![vec![
            Value::Int(2022),
            Value::str("desk"),
            Value::Float(0.5),
        ]];
        live.append_rows(&batch).unwrap();
        p.log_append(live.version(), live.schema(), &batch).unwrap();
        drop(p);
        let (p2, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        assert_tables_identical(&live, &recovered.unwrap());
        assert_eq!(p2.recovery_report().torn_bytes_truncated, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_frame_encoders_agree_and_both_enforce_the_cap() {
        let t = sample_table();
        let rows: Vec<Vec<Value>> = (0..t.num_rows()).map(|i| t.row(i)).collect();
        // The columnar encoder must be byte-identical to the row one —
        // replay can't tell which path logged a frame.
        assert_eq!(
            encode_wal_frame_from_table(7, &t).unwrap(),
            encode_wal_frame(7, t.schema(), &rows).unwrap()
        );
        let mut giant = TableBuilder::new(t.schema().clone());
        giant
            .push_row(vec![
                Value::Int(1),
                Value::Str("y".repeat(MAX_WAL_FRAME + 1)),
                Value::Float(0.0),
            ])
            .unwrap();
        let giant = giant.finish();
        assert!(encode_wal_frame_from_table(7, &giant).is_err());
        let giant_rows = vec![giant.row(0)];
        assert!(encode_wal_frame(7, t.schema(), &giant_rows).is_err());
    }

    #[test]
    fn unreadable_newest_snapshot_falls_back_to_older() {
        let dir = temp_dir("unreadable");
        let t = sample_table();
        let (p, _) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        p.checkpoint(&t).unwrap();
        drop(p);
        // A "newer" snapshot whose fs::read fails outright (it's a
        // directory) — the same damaged-newest situation as a CRC
        // failure, and it must fall back the same way.
        fs::create_dir(dir.join(format!(
            "{SNAPSHOT_PREFIX}{:020}{SNAPSHOT_SUFFIX}",
            u64::MAX
        )))
        .unwrap();
        let (p2, recovered) = Persistence::open(&dir, PersistOptions::default()).unwrap();
        assert_tables_identical(&t, &recovered.unwrap());
        assert_eq!(p2.recovery_report().corrupt_snapshots_skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tear_offset_is_deterministic_and_in_range() {
        for seq in 0..64u64 {
            for len in [1usize, 2, 13, 4096] {
                let a = wal_tear_offset(0xC0FFEE, seq, len);
                assert_eq!(a, wal_tear_offset(0xC0FFEE, seq, len));
                assert!(a < len, "torn offset must be strictly inside the frame");
            }
        }
        // Different seeds and sequences actually move the offset.
        let spread: std::collections::HashSet<usize> =
            (0..32).map(|seq| wal_tear_offset(1, seq, 10_000)).collect();
        assert!(spread.len() > 16, "offsets should spread: {spread:?}");
    }
}
