//! Query lifecycle: cancellation tokens, deadlines, priorities, and
//! per-query progress counters.
//!
//! zenvisage is an *interactive* system: users drag sliders and re-issue
//! sketches faster than a bulk scan completes, so most in-flight queries
//! are superseded before their results are ever looked at. A
//! [`QueryCtx`] is the handle that makes abandoning such work cheap: it
//! travels with a query (or a whole request batch) down through
//! `ZqlEngine::execute_ctx` → `Database::run_request_ctx` →
//! `EngineSnapshot::execute` → `exec::run_scheduled`, and every scan
//! loop checks it at a natural boundary —
//!
//! * the **morsel claim loop** checks between claims (the scheduler's
//!   built-in cancellation point: a worker that sees the flag simply
//!   stops claiming),
//! * the **serial** and **static-shard** scans check between chunks
//!   ([`crate::exec::CHUNK_ROWS`] rows).
//!
//! A cancelled query returns [`StorageError::Cancelled`] and its partial
//! result is discarded *before* the result cache ever sees it — the
//! cache stays bit-for-bit identical to the query never having run
//! (asserted by `tests/cancellation.rs`).
//!
//! # Cancellation sources
//!
//! The flag can be tripped four ways, recorded as a [`CancelReason`]:
//!
//! * [`QueryCtx::cancel`] — an explicit user/driver abort,
//! * a **deadline** ([`QueryCtx::with_deadline`]) — checked lazily at
//!   every cancellation point, so an expired deadline surfaces within
//!   one chunk/claim,
//! * **supersession** — `zv-server`'s `SessionManager` cancels a
//!   session's in-flight query when a newer interaction arrives
//!   (newest-interaction-wins),
//! * a **row budget** ([`QueryCtx::with_row_budget`]) — the ctx cancels
//!   itself once the scan has visited that many rows. This doubles as a
//!   deterministic mid-scan cancellation hook for tests and as a "best
//!   effort under N rows" knob.
//!
//! # Sharing and configuration
//!
//! `QueryCtx` is a cheap `Arc` clone; one ctx typically covers one user
//! interaction (which may be a whole multi-query request batch).
//! Configuration (`with_*`) happens **before** the ctx is shared —
//! builder methods panic if clones already exist. Cancellation and the
//! progress counters are lock-free atomics safe from any thread.

use crate::table::StorageError;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`QueryCtx`] was cancelled (first cause wins).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// [`QueryCtx::cancel`] was called.
    Explicit,
    /// The deadline passed ([`QueryCtx::with_deadline`]).
    Deadline,
    /// A newer query on the same session replaced this one
    /// (`SessionManager`'s newest-interaction-wins policy).
    Superseded,
    /// The scan exhausted its row budget ([`QueryCtx::with_row_budget`]).
    RowBudget,
    /// The client connection that submitted this query dropped before
    /// its result could be delivered (`zv-server`'s network layer
    /// cancels a session's remaining work when its socket dies — there
    /// is nobody left to deliver to).
    ConnectionLost,
}

impl CancelReason {
    fn from_code(code: u8) -> Option<CancelReason> {
        match code {
            1 => Some(CancelReason::Explicit),
            2 => Some(CancelReason::Deadline),
            3 => Some(CancelReason::Superseded),
            4 => Some(CancelReason::RowBudget),
            5 => Some(CancelReason::ConnectionLost),
            _ => None,
        }
    }

    fn code(self) -> u8 {
        match self {
            CancelReason::Explicit => 1,
            CancelReason::Deadline => 2,
            CancelReason::Superseded => 3,
            CancelReason::RowBudget => 4,
            CancelReason::ConnectionLost => 5,
        }
    }
}

#[derive(Debug)]
struct CtxInner {
    cancelled: AtomicBool,
    /// `CancelReason::code()` of the first cancellation cause; 0 = none.
    reason: AtomicU8,
    deadline: Option<Instant>,
    /// Rows the scan may visit before the ctx cancels itself;
    /// `u64::MAX` = unbounded.
    row_budget: u64,
    priority: i32,
    rows_scanned: AtomicU64,
    morsels_claimed: AtomicU64,
    morsels_cancelled: AtomicU64,
    /// Retry attempt counter fed to `FaultSpec::fires` — advancing it
    /// re-rolls every injected-fault decision for the next attempt.
    fault_epoch: AtomicU64,
    /// When set, the engines cap this query at one worker (the retry
    /// ladder's serial-degrade refuge; see `zv-server`).
    serial_only: AtomicBool,
}

/// Per-query lifecycle handle: cancellation token + optional deadline +
/// priority + progress counters. See the [module docs](self) for how it
/// is threaded through the execution stack.
#[derive(Clone, Debug)]
pub struct QueryCtx {
    inner: Arc<CtxInner>,
}

impl Default for QueryCtx {
    fn default() -> Self {
        QueryCtx::new()
    }
}

impl QueryCtx {
    /// An unconstrained ctx: never cancels unless [`QueryCtx::cancel`]
    /// is called.
    pub fn new() -> QueryCtx {
        QueryCtx {
            inner: Arc::new(CtxInner {
                cancelled: AtomicBool::new(false),
                reason: AtomicU8::new(0),
                deadline: None,
                row_budget: u64::MAX,
                priority: 0,
                rows_scanned: AtomicU64::new(0),
                morsels_claimed: AtomicU64::new(0),
                morsels_cancelled: AtomicU64::new(0),
                fault_epoch: AtomicU64::new(0),
                serial_only: AtomicBool::new(false),
            }),
        }
    }

    fn configure(&mut self) -> &mut CtxInner {
        Arc::get_mut(&mut self.inner).expect("configure a QueryCtx before sharing/cloning it")
    }

    /// Cancel automatically once `after` has elapsed from now. Checked
    /// lazily at every cancellation point (no timer thread), so an
    /// expired deadline surfaces within one chunk / one morsel claim.
    pub fn with_deadline(mut self, after: Duration) -> Self {
        self.configure().deadline = Some(Instant::now() + after);
        self
    }

    /// Cancel automatically at the absolute instant `at`.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.configure().deadline = Some(at);
        self
    }

    /// Scheduling priority (higher runs first in `SessionManager`'s
    /// overflow queue). Purely advisory inside the storage engines.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.configure().priority = priority;
        self
    }

    /// Cancel automatically once the scan has visited `rows` rows — a
    /// deterministic mid-scan cancellation trigger (used by the
    /// cancellation test-suite) and a "bounded effort" knob.
    pub fn with_row_budget(mut self, rows: u64) -> Self {
        self.configure().row_budget = rows;
        self
    }

    /// Explicitly cancel (idempotent; the first cause wins).
    pub fn cancel(&self) {
        self.cancel_with(CancelReason::Explicit);
    }

    /// Cancel, recording `reason` if this is the first cancellation.
    pub fn cancel_with(&self, reason: CancelReason) {
        if !self.inner.cancelled.swap(true, Ordering::Relaxed) {
            self.inner.reason.store(reason.code(), Ordering::Relaxed);
        }
    }

    /// True once cancelled (by any source). Also the lazy deadline
    /// check: an expired deadline trips the flag here. Cheap enough to
    /// call once per chunk / per claim (one relaxed load on the fast
    /// path).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                self.cancel_with(CancelReason::Deadline);
                return true;
            }
        }
        false
    }

    /// [`QueryCtx::is_cancelled`] as a `Result` — the form the execution
    /// stack propagates.
    #[inline]
    pub fn check(&self) -> Result<(), StorageError> {
        if self.is_cancelled() {
            Err(StorageError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Why the ctx was cancelled, once it is.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        CancelReason::from_code(self.inner.reason.load(Ordering::Relaxed))
    }

    pub fn priority(&self) -> i32 {
        self.inner.priority
    }

    /// Record `rows` visited by the scan; trips the row budget when the
    /// running total reaches it. Called by the scan loops at chunk /
    /// morsel granularity.
    #[inline]
    pub fn record_scanned(&self, rows: u64) {
        let total = self.inner.rows_scanned.fetch_add(rows, Ordering::Relaxed) + rows;
        if total >= self.inner.row_budget {
            self.cancel_with(CancelReason::RowBudget);
        }
    }

    /// Record one morsel claimed on behalf of this query.
    #[inline]
    pub fn record_morsel_claimed(&self) {
        self.inner.morsels_claimed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record morsels left unclaimed because the query was cancelled.
    pub fn record_morsels_cancelled(&self, n: u64) {
        self.inner.morsels_cancelled.fetch_add(n, Ordering::Relaxed);
    }

    /// Current retry epoch (0 on a fresh ctx). Every injected-fault
    /// decision hashes this in, so each retry attempt sees an
    /// independent — but still deterministic — fault pattern.
    #[inline]
    pub fn fault_epoch(&self) -> u64 {
        self.inner.fault_epoch.load(Ordering::Relaxed)
    }

    /// Advance the retry epoch (called by `zv-server` between attempts;
    /// safe after sharing, unlike the `with_*` builders). Returns the
    /// new epoch.
    pub fn advance_fault_epoch(&self) -> u64 {
        self.inner.fault_epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Restrict this query to serial execution (one worker) from now
    /// on. Idempotent; safe after sharing. The retry ladder's last
    /// resort: the serial path has no injection points and no fan-out,
    /// so it cannot hit the transient parallel failure again.
    pub fn force_serial(&self) {
        self.inner.serial_only.store(true, Ordering::Relaxed);
    }

    /// True once [`QueryCtx::force_serial`] was called.
    #[inline]
    pub fn serial_only(&self) -> bool {
        self.inner.serial_only.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the progress counters.
    pub fn stats(&self) -> QueryCtxStats {
        QueryCtxStats {
            rows_scanned: self.inner.rows_scanned.load(Ordering::Relaxed),
            morsels_claimed: self.inner.morsels_claimed.load(Ordering::Relaxed),
            morsels_cancelled: self.inner.morsels_cancelled.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            reason: self.cancel_reason(),
        }
    }
}

/// Snapshot of one query's progress ([`QueryCtx::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCtxStats {
    /// Rows the scan visited so far (partial scans included).
    pub rows_scanned: u64,
    /// Morsels claimed so far under morsel scheduling.
    pub morsels_claimed: u64,
    /// Morsels abandoned unclaimed because of cancellation.
    pub morsels_cancelled: u64,
    pub cancelled: bool,
    pub reason: Option<CancelReason>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ctx_never_cancels() {
        let ctx = QueryCtx::new();
        assert!(!ctx.is_cancelled());
        assert!(ctx.check().is_ok());
        assert_eq!(ctx.cancel_reason(), None);
        ctx.record_scanned(1 << 40);
        assert!(!ctx.is_cancelled(), "no budget means no budget trips");
    }

    #[test]
    fn explicit_cancel_wins_and_is_idempotent() {
        let ctx = QueryCtx::new();
        ctx.cancel();
        ctx.cancel_with(CancelReason::Superseded);
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.cancel_reason(), Some(CancelReason::Explicit));
        assert!(matches!(ctx.check(), Err(StorageError::Cancelled)));
    }

    #[test]
    fn expired_deadline_trips_on_check() {
        let ctx = QueryCtx::new().with_deadline(Duration::ZERO);
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.cancel_reason(), Some(CancelReason::Deadline));
        let ok = QueryCtx::new().with_deadline(Duration::from_secs(3600));
        assert!(!ok.is_cancelled());
    }

    #[test]
    fn row_budget_trips_once_reached() {
        let ctx = QueryCtx::new().with_row_budget(100);
        ctx.record_scanned(60);
        assert!(!ctx.is_cancelled());
        ctx.record_scanned(40);
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.cancel_reason(), Some(CancelReason::RowBudget));
        assert_eq!(ctx.stats().rows_scanned, 100);
    }

    #[test]
    fn cancellation_is_visible_across_clones() {
        let ctx = QueryCtx::new().with_priority(7);
        let shared = ctx.clone();
        shared.cancel_with(CancelReason::Superseded);
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.cancel_reason(), Some(CancelReason::Superseded));
        assert_eq!(ctx.priority(), 7);
    }

    #[test]
    fn fault_epoch_and_serial_only_work_after_sharing() {
        let ctx = QueryCtx::new();
        let shared = ctx.clone();
        assert_eq!(ctx.fault_epoch(), 0);
        assert!(!ctx.serial_only());
        assert_eq!(shared.advance_fault_epoch(), 1);
        assert_eq!(shared.advance_fault_epoch(), 2);
        assert_eq!(ctx.fault_epoch(), 2, "epoch is shared across clones");
        shared.force_serial();
        assert!(ctx.serial_only());
    }

    #[test]
    #[should_panic(expected = "before sharing")]
    fn configuring_a_shared_ctx_panics() {
        let ctx = QueryCtx::new();
        let _clone = ctx.clone();
        let _ = ctx.with_row_budget(1);
    }
}
