//! Selection predicates: the WHERE clause of the canonical query shape
//! (thesis §5.1). A predicate is a conjunction of atoms; that mirrors the
//! Constraints column, which is "added conjunctively to the WHERE clause"
//! (§3.4). Disjunction is available through [`Predicate::Or`] because the
//! Constraints column admits roughly "the set of possible expressions for
//! the WHERE clause in SQL".

use crate::table::{StorageError, Table};
use crate::value::{DataType, Value};
use std::fmt;

/// Comparison operators for numeric atoms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    #[inline]
    pub fn eval_f64(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Neq => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// One atomic condition.
#[derive(Clone, Debug, PartialEq)]
pub enum Atom {
    /// `col = 'value'` on a categorical column (bitmap-indexable).
    CatEq { col: String, value: String },
    /// `col <> 'value'` on a categorical column.
    CatNeq { col: String, value: String },
    /// `col IN ('a','b',...)` on a categorical column (bitmap-indexable).
    CatIn { col: String, values: Vec<String> },
    /// Numeric comparison on an int or float column.
    NumCmp { col: String, op: CmpOp, value: f64 },
    /// `col BETWEEN lo AND hi` (inclusive) on a numeric column.
    NumBetween { col: String, lo: f64, hi: f64 },
    /// `col LIKE 'prefix%'` on a categorical column — covers the zip-code
    /// query of Table 3.9.
    StrPrefix { col: String, prefix: String },
}

impl Atom {
    pub fn column(&self) -> &str {
        match self {
            Atom::CatEq { col, .. }
            | Atom::CatNeq { col, .. }
            | Atom::CatIn { col, .. }
            | Atom::NumCmp { col, .. }
            | Atom::NumBetween { col, .. }
            | Atom::StrPrefix { col, .. } => col,
        }
    }

    /// Checks the atom against row `row` of `table`. The column is looked
    /// up once per scan by the callers; this method is the slow reference
    /// path used by [`Predicate::eval_row`] and tests.
    pub fn eval_row(&self, table: &Table, row: usize) -> Result<bool, StorageError> {
        let col = table.column(self.column())?;
        Ok(match self {
            Atom::CatEq { value, .. } => {
                let c = col.as_cat().ok_or_else(|| type_err(self))?;
                match c.code_of(value) {
                    Some(code) => c.code_at(row) == code,
                    None => false,
                }
            }
            Atom::CatNeq { value, .. } => {
                let c = col.as_cat().ok_or_else(|| type_err(self))?;
                match c.code_of(value) {
                    Some(code) => c.code_at(row) != code,
                    None => true,
                }
            }
            Atom::CatIn { values, .. } => {
                let c = col.as_cat().ok_or_else(|| type_err(self))?;
                let code = c.code_at(row);
                values.iter().any(|v| c.code_of(v) == Some(code))
            }
            Atom::NumCmp { op, value, .. } => {
                let x = col.get_f64(row).ok_or_else(|| type_err(self))?;
                op.eval_f64(x, *value)
            }
            Atom::NumBetween { lo, hi, .. } => {
                let x = col.get_f64(row).ok_or_else(|| type_err(self))?;
                x >= *lo && x <= *hi
            }
            Atom::StrPrefix { prefix, .. } => {
                let c = col.as_cat().ok_or_else(|| type_err(self))?;
                c.decode(c.code_at(row)).starts_with(prefix.as_str())
            }
        })
    }

    /// Validate that the referenced column exists with a compatible type.
    pub fn validate(&self, table: &Table) -> Result<(), StorageError> {
        let col = table.column(self.column())?;
        let ok = match self {
            Atom::CatEq { .. }
            | Atom::CatNeq { .. }
            | Atom::CatIn { .. }
            | Atom::StrPrefix { .. } => col.dtype() == DataType::Cat,
            Atom::NumCmp { .. } | Atom::NumBetween { .. } => col.dtype() != DataType::Cat,
        };
        if ok {
            Ok(())
        } else {
            Err(type_err(self))
        }
    }
}

fn type_err(atom: &Atom) -> StorageError {
    StorageError::TypeMismatch(format!("atom {atom:?} applied to incompatible column"))
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::CatEq { col, value } => write!(f, "{col}='{value}'"),
            Atom::CatNeq { col, value } => write!(f, "{col}<>'{value}'"),
            Atom::CatIn { col, values } => {
                write!(f, "{col} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "'{v}'")?;
                }
                write!(f, ")")
            }
            Atom::NumCmp { col, op, value } => write!(f, "{col}{op}{value}"),
            Atom::NumBetween { col, lo, hi } => write!(f, "{col} BETWEEN {lo} AND {hi}"),
            Atom::StrPrefix { col, prefix } => write!(f, "{col} LIKE '{prefix}%'"),
        }
    }
}

/// A boolean filter over table rows.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Predicate {
    /// Matches every row (blank Constraints column).
    #[default]
    True,
    /// Conjunction of atoms.
    And(Vec<Atom>),
    /// Disjunction of conjunctions (DNF).
    Or(Vec<Vec<Atom>>),
}

impl Predicate {
    pub fn atom(a: Atom) -> Self {
        Predicate::And(vec![a])
    }

    pub fn cat_eq(col: impl Into<String>, value: impl Into<String>) -> Self {
        Predicate::atom(Atom::CatEq {
            col: col.into(),
            value: value.into(),
        })
    }

    pub fn cat_in(col: impl Into<String>, values: Vec<String>) -> Self {
        Predicate::atom(Atom::CatIn {
            col: col.into(),
            values,
        })
    }

    pub fn num_eq(col: impl Into<String>, value: f64) -> Self {
        Self::num_cmp(col, CmpOp::Eq, value)
    }

    pub fn num_cmp(col: impl Into<String>, op: CmpOp, value: f64) -> Self {
        Predicate::atom(Atom::NumCmp {
            col: col.into(),
            op,
            value,
        })
    }

    pub fn num_between(col: impl Into<String>, lo: f64, hi: f64) -> Self {
        Predicate::atom(Atom::NumBetween {
            col: col.into(),
            lo,
            hi,
        })
    }

    pub fn cat_neq(col: impl Into<String>, value: impl Into<String>) -> Self {
        Predicate::atom(Atom::CatNeq {
            col: col.into(),
            value: value.into(),
        })
    }

    pub fn str_prefix(col: impl Into<String>, prefix: impl Into<String>) -> Self {
        Predicate::atom(Atom::StrPrefix {
            col: col.into(),
            prefix: prefix.into(),
        })
    }

    pub fn is_true(&self) -> bool {
        match self {
            Predicate::True => true,
            Predicate::And(atoms) => atoms.is_empty(),
            Predicate::Or(disj) => disj.iter().any(|c| c.is_empty()),
        }
    }

    /// Conjoin another predicate onto this one (used when the executor
    /// merges the Z-slice condition with the Constraints column).
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(a), Predicate::Or(d)) | (Predicate::Or(d), Predicate::And(a)) => {
                Predicate::Or(
                    d.into_iter()
                        .map(|mut c| {
                            c.extend(a.iter().cloned());
                            c
                        })
                        .collect(),
                )
            }
            (Predicate::Or(d1), Predicate::Or(d2)) => {
                let mut out = Vec::with_capacity(d1.len() * d2.len());
                for c1 in &d1 {
                    for c2 in &d2 {
                        let mut c = c1.clone();
                        c.extend(c2.iter().cloned());
                        out.push(c);
                    }
                }
                Predicate::Or(out)
            }
        }
    }

    pub fn eval_row(&self, table: &Table, row: usize) -> Result<bool, StorageError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::And(atoms) => {
                for a in atoms {
                    if !a.eval_row(table, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Predicate::Or(disj) => {
                for conj in disj {
                    let mut all = true;
                    for a in conj {
                        if !a.eval_row(table, row)? {
                            all = false;
                            break;
                        }
                    }
                    if all {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    pub fn validate(&self, table: &Table) -> Result<(), StorageError> {
        match self {
            Predicate::True => Ok(()),
            Predicate::And(atoms) => atoms.iter().try_for_each(|a| a.validate(table)),
            Predicate::Or(d) => d.iter().flatten().try_for_each(|a| a.validate(table)),
        }
    }

    /// Equality value this predicate pins `col` to, if any — used by the
    /// intra-line optimizer to recognise batchable queries.
    pub fn pinned_value(&self, col: &str) -> Option<Value> {
        if let Predicate::And(atoms) = self {
            for a in atoms {
                match a {
                    Atom::CatEq { col: c, value } if c == col => {
                        return Some(Value::str(value.clone()))
                    }
                    Atom::NumCmp {
                        col: c,
                        op: CmpOp::Eq,
                        value,
                    } if c == col => return Some(Value::Float(*value)),
                    _ => {}
                }
            }
        }
        None
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::And(atoms) => {
                let parts: Vec<String> = atoms.iter().map(|a| a.to_string()).collect();
                write!(f, "{}", parts.join(" AND "))
            }
            Predicate::Or(d) => {
                let parts: Vec<String> = d
                    .iter()
                    .map(|c| {
                        let inner: Vec<String> = c.iter().map(|a| a.to_string()).collect();
                        format!("({})", inner.join(" AND "))
                    })
                    .collect();
                write!(f, "{}", parts.join(" OR "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Field, Schema, TableBuilder};

    fn t() -> Table {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("zip", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (y, p, z, s) in [
            (2014i64, "chair", "02134", 5.0f64),
            (2015, "desk", "90210", 7.0),
            (2016, "chair", "02999", 9.0),
        ] {
            b.push_row(vec![
                Value::Int(y),
                Value::str(p),
                Value::str(z),
                Value::Float(s),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn cat_atoms() {
        let t = t();
        let eq = Atom::CatEq {
            col: "product".into(),
            value: "chair".into(),
        };
        assert!(eq.eval_row(&t, 0).unwrap());
        assert!(!eq.eval_row(&t, 1).unwrap());
        let neq = Atom::CatNeq {
            col: "product".into(),
            value: "chair".into(),
        };
        assert!(!neq.eval_row(&t, 0).unwrap());
        assert!(neq.eval_row(&t, 1).unwrap());
        // value absent from dictionary
        let ghost = Atom::CatEq {
            col: "product".into(),
            value: "sofa".into(),
        };
        assert!(!ghost.eval_row(&t, 0).unwrap());
        let ghost_neq = Atom::CatNeq {
            col: "product".into(),
            value: "sofa".into(),
        };
        assert!(ghost_neq.eval_row(&t, 0).unwrap());
    }

    #[test]
    fn numeric_atoms() {
        let t = t();
        let cmp = Atom::NumCmp {
            col: "year".into(),
            op: CmpOp::Ge,
            value: 2015.0,
        };
        assert!(!cmp.eval_row(&t, 0).unwrap());
        assert!(cmp.eval_row(&t, 1).unwrap());
        let between = Atom::NumBetween {
            col: "sales".into(),
            lo: 6.0,
            hi: 8.0,
        };
        assert!(!between.eval_row(&t, 0).unwrap());
        assert!(between.eval_row(&t, 1).unwrap());
    }

    #[test]
    fn prefix_atom_models_zip_like_query() {
        // Table 3.9: zip LIKE '02...' — chairs sold in 02000..02999.
        let t = t();
        let p = Predicate::And(vec![
            Atom::CatEq {
                col: "product".into(),
                value: "chair".into(),
            },
            Atom::StrPrefix {
                col: "zip".into(),
                prefix: "02".into(),
            },
        ]);
        assert!(p.eval_row(&t, 0).unwrap());
        assert!(!p.eval_row(&t, 1).unwrap());
        assert!(p.eval_row(&t, 2).unwrap());
    }

    #[test]
    fn conjunction_and_disjunction() {
        let t = t();
        let p = Predicate::cat_eq("product", "chair").and(Predicate::num_eq("year", 2016.0));
        assert!(!p.eval_row(&t, 0).unwrap());
        assert!(p.eval_row(&t, 2).unwrap());

        let or = Predicate::Or(vec![
            vec![Atom::CatEq {
                col: "product".into(),
                value: "desk".into(),
            }],
            vec![Atom::NumCmp {
                col: "year".into(),
                op: CmpOp::Eq,
                value: 2014.0,
            }],
        ]);
        assert!(or.eval_row(&t, 0).unwrap());
        assert!(or.eval_row(&t, 1).unwrap());
        assert!(!or.eval_row(&t, 2).unwrap());
    }

    #[test]
    fn and_distributes_over_or() {
        let t = t();
        let or = Predicate::Or(vec![
            vec![Atom::CatEq {
                col: "product".into(),
                value: "desk".into(),
            }],
            vec![Atom::CatEq {
                col: "product".into(),
                value: "chair".into(),
            }],
        ]);
        let combined = or.and(Predicate::num_eq("year", 2015.0));
        assert!(!combined.eval_row(&t, 0).unwrap());
        assert!(combined.eval_row(&t, 1).unwrap());
        assert!(!combined.eval_row(&t, 2).unwrap());
    }

    #[test]
    fn validation_catches_type_and_name_errors() {
        let t = t();
        assert!(Predicate::cat_eq("product", "chair").validate(&t).is_ok());
        assert!(Predicate::cat_eq("sales", "chair").validate(&t).is_err());
        assert!(Predicate::num_eq("product", 1.0).validate(&t).is_err());
        assert!(Predicate::cat_eq("ghost", "x").validate(&t).is_err());
    }

    #[test]
    fn pinned_value_detection() {
        let p = Predicate::cat_eq("location", "US").and(Predicate::num_eq("year", 2015.0));
        assert_eq!(p.pinned_value("location"), Some(Value::str("US")));
        assert_eq!(p.pinned_value("year"), Some(Value::Float(2015.0)));
        assert_eq!(p.pinned_value("product"), None);
        assert_eq!(Predicate::True.pinned_value("x"), None);
    }
}
