//! Scalar values and data types shared across the storage engine, the ZQL
//! executor, and the visual exploration algebra.

use std::fmt;

/// The storage type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (years, months, counts, zip codes, ...).
    Int,
    /// 64-bit float measure (sales, profit, delays, ...).
    Float,
    /// Dictionary-encoded categorical string (product, location, ...).
    Cat,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Cat => write!(f, "cat"),
        }
    }
}

/// A dynamically-typed scalar.
///
/// `Value` implements a *total* ordering (`Null < Int/Float < Str`, with
/// numeric comparison across `Int`/`Float`), because ordered-bag semantics
/// (thesis §4.1) require deterministic sorting of heterogeneous tuples.
#[derive(Clone, Debug)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used for plotting / distance computation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.rank().cmp(&other.rank()).then(Ordering::Equal),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Int and Float hash identically when numerically equal
            // integers, matching PartialEq above.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_ne!(Value::Int(3), Value::str("3"));
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let mut vals = [
            Value::str("b"),
            Value::Float(2.5),
            Value::Null,
            Value::Int(10),
            Value::str("a"),
            Value::Int(-1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-1));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(10));
        assert_eq!(vals[4], Value::str("a"));
        assert_eq!(vals[5], Value::str("b"));
    }

    #[test]
    fn hash_consistent_with_eq_for_numerics() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(4));
        assert!(set.contains(&Value::Float(4.0)));
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("US").to_string(), "US");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
