//! The backend abstraction: "zenvisage can use as a backend any
//! traditional relational database" (thesis §2). The ZQL executor only
//! speaks [`Database`]; both shipped engines implement it.
//!
//! Since the engine-level result cache landed, [`Database::run_request`]
//! is also where cross-query caching happens: each query is looked up
//! under `(engine, table version, canonical query)` before any scan, so
//! interactive sessions replaying the same slices — across requests *and*
//! across ZQL executions — skip the scan entirely. See [`crate::cache`]
//! for the version-key invalidation scheme.

use crate::cache::{CacheKey, ResultCache};
use crate::query::{ResultTable, SelectQuery};
use crate::stats::ExecStats;
use crate::table::{StorageError, Table};
use crate::value::Value;
use std::sync::Arc;
use std::time::Duration;

/// A queryable backend holding one relation.
pub trait Database: Send + Sync {
    /// Stable engine identifier (used in experiment output and as the
    /// engine half of result-cache keys).
    fn name(&self) -> &'static str;

    /// The current snapshot of the relation this engine serves. Returned
    /// by value because engines may swap the snapshot on append.
    fn table(&self) -> Arc<Table>;

    /// Execute one canonical grouped-aggregate query, bypassing the
    /// result cache (the raw path; also what equivalence tests compare
    /// cached results against).
    fn execute(&self, query: &SelectQuery) -> Result<ResultTable, StorageError>;

    /// Execution counters.
    fn stats(&self) -> &ExecStats;

    /// The engine-level result cache, if this engine carries one.
    fn result_cache(&self) -> Option<&ResultCache> {
        None
    }

    /// Point-in-time counters of the result cache, if any.
    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.result_cache().map(ResultCache::stats)
    }

    /// Append rows to the relation. Mutating engines bump the table
    /// version (invalidating cached results for free) and refresh their
    /// indexes; the default implementation rejects the append.
    fn append_rows(&self, _rows: &[Vec<Value>]) -> Result<usize, StorageError> {
        Err(StorageError::Unsupported(
            "this engine does not support appends".into(),
        ))
    }

    /// Append a whole same-schema table. Same contract as
    /// [`Database::append_rows`].
    fn append_table(&self, _other: &Table) -> Result<usize, StorageError> {
        Err(StorageError::Unsupported(
            "this engine does not support appends".into(),
        ))
    }

    /// Simulated round-trip latency per batched request (DESIGN.md
    /// substitution 2). Zero by default.
    fn request_overhead(&self) -> Duration {
        Duration::ZERO
    }

    /// Execute a batch of queries as one round trip. The external
    /// optimizations of §5.2 work by shrinking the number of calls made
    /// here; the engine-level result cache shrinks the *scans* behind
    /// them.
    ///
    /// Per query: look up the result cache (recording a hit or miss in
    /// [`ExecStats`]), then fan the misses across the shared pool exactly
    /// as before — multi-query batches use one worker per query, while a
    /// single missing query parallelizes *inside* the scan (see
    /// `exec::aggregate_parallel`), so the hardware is saturated either
    /// way. Fresh results are inserted under the table version observed
    /// *before* execution: the version only ever advances, so an entry
    /// can never be served after its snapshot is retired (see
    /// [`crate::cache`]).
    ///
    /// Consistency: each answer is *per-query* snapshot-consistent and at
    /// least as new as the version observed at request start. A request
    /// racing a concurrent append may therefore mix adjacent snapshots
    /// across the queries of one batch — the same semantics as a
    /// non-transactional batch against a live SQL backend. Pinning one
    /// snapshot for a whole batch is a ROADMAP follow-on.
    fn run_request(&self, queries: &[SelectQuery]) -> Result<Vec<ResultTable>, StorageError> {
        self.stats().record_request();
        let overhead = self.request_overhead();
        if !overhead.is_zero() {
            std::thread::sleep(overhead);
        }
        let Some(cache) = self.result_cache() else {
            return crate::parallel::try_parallel_map(queries.len(), 0, |i| {
                self.execute(&queries[i])
            });
        };
        let version = self.table().version();
        let engine = self.name();
        let mut results: Vec<Option<Arc<ResultTable>>> = Vec::with_capacity(queries.len());
        let mut misses: Vec<(usize, CacheKey)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let key = CacheKey::new(engine, version, q);
            match cache.get(&key) {
                Some(hit) => {
                    self.stats().record_cache_hit();
                    results.push(Some(hit));
                }
                None => {
                    self.stats().record_cache_miss();
                    results.push(None);
                    misses.push((i, key));
                }
            }
        }
        let fresh = crate::parallel::try_parallel_map(misses.len(), 0, |j| {
            self.execute(&queries[misses[j].0])
        })?;
        for ((i, key), rt) in misses.into_iter().zip(fresh) {
            let rt = Arc::new(rt);
            let evicted = cache.insert(key, Arc::clone(&rt));
            self.stats().record_cache_evictions(evicted);
            results[i] = Some(rt);
        }
        Ok(results
            .into_iter()
            .map(|r| {
                let rt = r.expect("every query either hit or was executed");
                // One deep copy at the trait boundary (its signature is
                // by-value); cache hits never copy under the lock.
                Arc::try_unwrap(rt).unwrap_or_else(|shared| (*shared).clone())
            })
            .collect())
    }
}

/// Convenience alias used throughout the ZQL executor.
pub type DynDatabase = Arc<dyn Database>;
