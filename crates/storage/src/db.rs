//! The backend abstraction: "zenvisage can use as a backend any
//! traditional relational database" (thesis §2). The ZQL executor only
//! speaks [`Database`]; both shipped engines implement it.

use crate::query::{ResultTable, SelectQuery};
use crate::stats::ExecStats;
use crate::table::{StorageError, Table};
use std::sync::Arc;
use std::time::Duration;

/// A queryable backend holding one relation.
pub trait Database: Send + Sync {
    /// Stable engine identifier (used in experiment output).
    fn name(&self) -> &'static str;

    /// The relation this engine serves.
    fn table(&self) -> &Arc<Table>;

    /// Execute one canonical grouped-aggregate query.
    fn execute(&self, query: &SelectQuery) -> Result<ResultTable, StorageError>;

    /// Execution counters.
    fn stats(&self) -> &ExecStats;

    /// Simulated round-trip latency per batched request (DESIGN.md
    /// substitution 2). Zero by default.
    fn request_overhead(&self) -> Duration {
        Duration::ZERO
    }

    /// Execute a batch of queries as one round trip. The external
    /// optimizations of §5.2 work by shrinking the number of calls made
    /// here.
    ///
    /// Multi-query batches fan out across the shared pool (one worker per
    /// query up to the hardware width); each query then scans serially,
    /// thanks to the pool's nesting guard. Single-query requests instead
    /// parallelize *inside* the scan (see `exec::aggregate_parallel`), so
    /// the hardware is saturated either way.
    fn run_request(&self, queries: &[SelectQuery]) -> Result<Vec<ResultTable>, StorageError> {
        self.stats().record_request();
        let overhead = self.request_overhead();
        if !overhead.is_zero() {
            std::thread::sleep(overhead);
        }
        crate::parallel::try_parallel_map(queries.len(), 0, |i| self.execute(&queries[i]))
    }
}

/// Convenience alias used throughout the ZQL executor.
pub type DynDatabase = Arc<dyn Database>;
