//! The backend abstraction: "zenvisage can use as a backend any
//! traditional relational database" (thesis §2). The ZQL executor only
//! speaks [`Database`]; both shipped engines implement it.
//!
//! # Snapshots and batch pinning
//!
//! Engines expose their state as immutable [`EngineSnapshot`]s
//! ([`Database::pin`]): a pinned snapshot bundles the table version the
//! engine serves *and whatever auxiliary structures answer queries over
//! it* (the bitmap engine pins its indexes together with the table).
//! [`Database::run_request`] pins **once per batch**, so every query of
//! a batch — cache hits, derived hits, and fresh executions alike — is
//! answered against the same table version even while appends race the
//! batch; a single [`Database::execute`] pins per call.
//!
//! # Caching
//!
//! `run_request` is also where cross-query caching happens: each query
//! is looked up under `(engine, table version, canonical query)` before
//! any scan, and an exact-key miss is offered to the subsumption-based
//! derivation path ([`crate::cache::ResultCache::lookup_derived`]) which
//! answers subset-predicate and per-Z-slice queries by post-filtering a
//! cached superset result. Results flow as `Arc<ResultTable>` end to
//! end: a warm hit is a pointer bump, never a deep copy. See
//! [`crate::cache`] for the version-key invalidation scheme, the
//! subsumption rules, and cost-based admission.

use crate::cache::{CacheKey, ResultCache};
use crate::lifecycle::QueryCtx;
use crate::query::{ResultTable, SelectQuery};
use crate::stats::ExecStats;
use crate::table::{StorageError, Table};
use crate::value::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One immutable, internally consistent view of an engine's state: the
/// table snapshot plus whatever the engine needs to answer queries over
/// exactly that data (indexes, compiled metadata). Queries against one
/// snapshot are mutually consistent by construction — appends only ever
/// produce *new* snapshots.
pub trait EngineSnapshot: Send + Sync {
    /// The pinned table.
    fn table(&self) -> &Arc<Table>;

    /// Execute one canonical grouped-aggregate query against the pinned
    /// state, returning the result and the number of rows scanned (the
    /// result's recompute cost, which drives cache admission). The
    /// query's [`QueryCtx`] is observed at the scan's cancellation
    /// points (between morsel claims / between chunks); a cancelled
    /// query returns [`StorageError::Cancelled`] and discards its
    /// partial state.
    fn execute(
        &self,
        query: &SelectQuery,
        ctx: &QueryCtx,
    ) -> Result<(ResultTable, u64), StorageError>;
}

/// Execute against a snapshot, recording query count / rows / latency —
/// or, for a cancelled query, the `queries_cancelled` counter.
fn execute_recorded(
    stats: &ExecStats,
    snap: &dyn EngineSnapshot,
    query: &SelectQuery,
    ctx: &QueryCtx,
) -> Result<(ResultTable, u64), StorageError> {
    let start = Instant::now();
    match snap.execute(query, ctx) {
        Ok((result, scanned)) => {
            stats.record_query(scanned, start.elapsed());
            Ok((result, scanned))
        }
        Err(StorageError::Cancelled) => {
            stats.record_query_cancelled();
            Err(StorageError::Cancelled)
        }
        Err(e) => Err(e),
    }
}

/// A queryable backend holding one relation.
pub trait Database: Send + Sync {
    /// Stable engine identifier (used in experiment output and as the
    /// engine half of result-cache keys).
    fn name(&self) -> &'static str;

    /// Pin the engine's current state. Cheap (an `Arc` bump plus one
    /// wrapper allocation); the returned snapshot stays valid and
    /// unchanged however many appends land after it.
    fn pin(&self) -> Arc<dyn EngineSnapshot>;

    /// The current snapshot of the relation this engine serves. Returned
    /// by value because engines may swap the snapshot on append.
    fn table(&self) -> Arc<Table> {
        self.pin().table().clone()
    }

    /// Execute one canonical grouped-aggregate query, bypassing the
    /// result cache (the raw path; also what equivalence tests compare
    /// cached results against).
    fn execute(&self, query: &SelectQuery) -> Result<ResultTable, StorageError> {
        self.execute_ctx(query, &QueryCtx::new())
    }

    /// [`Database::execute`] under an explicit lifecycle ctx: the scan
    /// observes cancellation / deadline / row budget and returns
    /// [`StorageError::Cancelled`] once tripped.
    fn execute_ctx(
        &self,
        query: &SelectQuery,
        ctx: &QueryCtx,
    ) -> Result<ResultTable, StorageError> {
        execute_recorded(self.stats(), &*self.pin(), query, ctx).map(|(rt, _)| rt)
    }

    /// Execution counters.
    fn stats(&self) -> &ExecStats;

    /// The engine-level result cache, if this engine carries one.
    fn result_cache(&self) -> Option<&ResultCache> {
        None
    }

    /// Point-in-time counters of the result cache, if any.
    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.result_cache().map(ResultCache::stats)
    }

    /// Append rows to the relation. Mutating engines bump the table
    /// version (invalidating cached results for free) and refresh their
    /// indexes; the default implementation rejects the append.
    fn append_rows(&self, _rows: &[Vec<Value>]) -> Result<usize, StorageError> {
        Err(StorageError::Unsupported(
            "this engine does not support appends".into(),
        ))
    }

    /// Append a whole same-schema table. Same contract as
    /// [`Database::append_rows`].
    fn append_table(&self, _other: &Table) -> Result<usize, StorageError> {
        Err(StorageError::Unsupported(
            "this engine does not support appends".into(),
        ))
    }

    /// Simulated round-trip latency per batched request (DESIGN.md
    /// substitution 2). Zero by default.
    fn request_overhead(&self) -> Duration {
        Duration::ZERO
    }

    /// Execute a batch of queries as one round trip. The external
    /// optimizations of §5.2 work by shrinking the number of calls made
    /// here; the engine-level result cache shrinks the *scans* behind
    /// them.
    ///
    /// Per query: look up the result cache exactly, then via predicate
    /// subsumption (both answered without touching a base row), then fan
    /// the true misses across the shared pool — multi-query batches use
    /// one worker per query, while a single missing query parallelizes
    /// *inside* the scan (morsel-claimed by default, statically sharded
    /// via [`crate::exec::SchedulingMode::Static`]; see
    /// `exec::run_scheduled`), so the hardware is saturated either way.
    /// Fresh results are offered to
    /// the cache under the pinned snapshot's version at their scan cost
    /// (cost-based admission may decline them): the version only ever
    /// advances, so an entry can never be served after its snapshot is
    /// retired (see [`crate::cache`]).
    ///
    /// Consistency: one snapshot is pinned for the whole batch, so every
    /// answer — hit, derived, or fresh — describes the same table
    /// version even when appends race the request, and that version is
    /// at least as new as the engine's state at request start.
    ///
    /// Results are shared `Arc`s: an exact warm hit returns the cached
    /// allocation itself (pointer bump, zero copies).
    fn run_request(&self, queries: &[SelectQuery]) -> Result<Vec<Arc<ResultTable>>, StorageError> {
        self.run_request_ctx(queries, &QueryCtx::new())
    }

    /// [`Database::run_request`] under an explicit lifecycle ctx. One
    /// ctx covers the whole batch (it represents one user interaction):
    /// cancelling it aborts every in-flight scan of the batch at the
    /// next cancellation point, the request returns
    /// [`StorageError::Cancelled`], and **no** result of the batch —
    /// complete or partial — is inserted into the result cache, so a
    /// cancelled request leaves the cache bit-for-bit as if it never
    /// ran.
    fn run_request_ctx(
        &self,
        queries: &[SelectQuery],
        ctx: &QueryCtx,
    ) -> Result<Vec<Arc<ResultTable>>, StorageError> {
        self.stats().record_request();
        if ctx.is_cancelled() {
            self.stats().record_query_cancelled();
            return Err(StorageError::Cancelled);
        }
        let overhead = self.request_overhead();
        if !overhead.is_zero() {
            std::thread::sleep(overhead);
        }
        let snap = self.pin();
        let Some(cache) = self.result_cache() else {
            return crate::parallel::try_parallel_map(queries.len(), 0, |i| {
                execute_recorded(self.stats(), &*snap, &queries[i], ctx).map(|(rt, _)| Arc::new(rt))
            });
        };
        let version = snap.table().version();
        let engine = self.name();
        let mut results: Vec<Option<Arc<ResultTable>>> = Vec::with_capacity(queries.len());
        let mut misses: Vec<(usize, CacheKey)> = Vec::new();
        // Derived results are re-inserted only once the whole batch has
        // succeeded: a batch cancelled (or failed) after the probes must
        // leave the cache exactly as it found it.
        let mut derived_inserts: Vec<(CacheKey, Arc<ResultTable>, u64)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let key = CacheKey::new(engine, version, q);
            if let Some(hit) = cache.get(&key) {
                self.stats().record_cache_hit();
                results.push(Some(hit));
            } else if let Some(derived) = cache.lookup_derived(&key) {
                self.stats().record_cache_derived_hit();
                results.push(Some(Arc::clone(&derived.result)));
                derived_inserts.push((key, derived.result, derived.cost));
            } else {
                self.stats().record_cache_miss();
                results.push(None);
                misses.push((i, key));
            }
        }
        let fresh = crate::parallel::try_parallel_map(misses.len(), 0, |j| {
            execute_recorded(self.stats(), &*snap, &queries[misses[j].0], ctx)
        })?;
        // The batch committed: make derived answers exact entries (so
        // repeats are plain hits) and offer the fresh scans to the
        // cache at their scan cost.
        let inserts = derived_inserts.into_iter().map(|(key, rt, cost)| {
            let outcome = cache.insert(key, rt, cost);
            (None, outcome)
        });
        let fresh_inserts = misses
            .into_iter()
            .zip(fresh)
            .map(|((i, key), (rt, scanned))| {
                let rt = Arc::new(rt);
                let outcome = cache.insert(key, Arc::clone(&rt), scanned);
                (Some((i, rt)), outcome)
            });
        for (slot, outcome) in inserts.chain(fresh_inserts) {
            if !outcome.admitted {
                self.stats().record_cache_admission_reject();
            }
            self.stats().record_cache_evictions(outcome.evicted);
            if let Some((i, rt)) = slot {
                results[i] = Some(rt);
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every query either hit or was executed"))
            .collect())
    }
}

/// Convenience alias used throughout the ZQL executor.
pub type DynDatabase = Arc<dyn Database>;
