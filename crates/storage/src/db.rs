//! The backend abstraction: "zenvisage can use as a backend any
//! traditional relational database" (thesis §2). The ZQL executor only
//! speaks [`Database`]; both shipped engines implement it.
//!
//! # Snapshots and batch pinning
//!
//! Engines expose their state as immutable [`EngineSnapshot`]s
//! ([`Database::pin`]): a pinned snapshot bundles the table version the
//! engine serves *and whatever auxiliary structures answer queries over
//! it* (the bitmap engine pins its indexes together with the table).
//! [`Database::run_request`] pins **once per batch**, so every query of
//! a batch — cache hits, derived hits, and fresh executions alike — is
//! answered against the same table version even while appends race the
//! batch; a single [`Database::execute`] pins per call.
//!
//! # Caching
//!
//! `run_request` is also where cross-query caching happens: each query
//! is looked up under `(engine, table version, canonical query)` before
//! any scan, and an exact-key miss is offered to the subsumption-based
//! derivation path ([`crate::cache::ResultCache::lookup_derived`]) which
//! answers subset-predicate and per-Z-slice queries by post-filtering a
//! cached superset result. A miss that still has a cached result at an
//! *ancestor* table version — the table proving the gap is pure appends
//! — is answered by incremental view maintenance: scan only the
//! appended rows ([`EngineSnapshot::execute_range`]) and merge the
//! delta into the cached aggregate. Results flow as `Arc<ResultTable>`
//! end to end: a warm hit is a pointer bump, never a deep copy. See
//! [`crate::cache`] for the version-key invalidation scheme, the
//! subsumption rules, the IVM rules table, and cost-based admission.

use crate::cache::{CacheKey, QueryKey, ResultCache};
use crate::lifecycle::QueryCtx;
use crate::query::{Agg, ResultTable, SelectQuery};
use crate::stats::ExecStats;
use crate::table::{StorageError, Table};
use crate::value::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One immutable, internally consistent view of an engine's state: the
/// table snapshot plus whatever the engine needs to answer queries over
/// exactly that data (indexes, compiled metadata). Queries against one
/// snapshot are mutually consistent by construction — appends only ever
/// produce *new* snapshots.
pub trait EngineSnapshot: Send + Sync {
    /// The pinned table.
    fn table(&self) -> &Arc<Table>;

    /// Execute one canonical grouped-aggregate query against the pinned
    /// state, returning the result and the number of rows scanned (the
    /// result's recompute cost, which drives cache admission). The
    /// query's [`QueryCtx`] is observed at the scan's cancellation
    /// points (between morsel claims / between chunks); a cancelled
    /// query returns [`StorageError::Cancelled`] and discards its
    /// partial state.
    fn execute(
        &self,
        query: &SelectQuery,
        ctx: &QueryCtx,
    ) -> Result<(ResultTable, u64), StorageError>;

    /// Execute `query` over only the contiguous row range `[start, end)`
    /// of the pinned table — the IVM delta scan over rows appended
    /// between two versions (see [`crate::cache`]'s IVM section). The
    /// query's predicate is applied as a residual inside the range; the
    /// returned scanned count is `end - start`. Engines that cannot
    /// scan a sub-range decline with [`StorageError::Unsupported`] and
    /// the caller falls back to a full recompute.
    fn execute_range(
        &self,
        _query: &SelectQuery,
        _ctx: &QueryCtx,
        _start: usize,
        _end: usize,
    ) -> Result<(ResultTable, u64), StorageError> {
        Err(StorageError::Unsupported(
            "this engine cannot scan a row sub-range".into(),
        ))
    }
}

/// One committed IVM answer: the user-visible result plus the cache
/// inserts (state and, for AVG queries, the finalized result) to apply
/// once the whole batch commits.
struct IvmAnswer {
    result: Arc<ResultTable>,
    inserts: Vec<(CacheKey, Arc<ResultTable>, u64)>,
}

/// Try to answer an exact-key miss at `version` by delta-merging the
/// appended row range into a cached ancestor-version result. `Ok(None)`
/// declines (no mergeable form, no provable ancestor, engine cannot
/// range-scan, or an injected merge fault) and the caller falls back to
/// a full scan; only cancellation is an error. On success the delta's
/// visited rows are recorded as `ivm_rows_scanned` — deliberately *not*
/// as `rows_scanned` or a query, so full-scan ledgers stay exact.
fn try_ivm(
    stats: &ExecStats,
    cache: &ResultCache,
    snap: &dyn EngineSnapshot,
    engine: &'static str,
    version: u64,
    query: &SelectQuery,
    ctx: &QueryCtx,
) -> Result<Option<IvmAnswer>, StorageError> {
    let Some(form) = crate::cache::ivm_form(query) else {
        return Ok(None);
    };
    let state_key = QueryKey::of(&form.state_query);
    let sources = cache.ivm_sources(engine, &state_key, version);
    if sources.is_empty() {
        return Ok(None);
    }
    let table = snap.table();
    let new_rows = table.num_rows();
    for src in sources {
        // The lineage proof: the table remembers the row count it had
        // at `src.version` only if every step since was a pure append.
        let Some(old_rows) = table.ancestor_rows(src.version) else {
            continue;
        };
        let (delta, scanned) = match snap.execute_range(&form.state_query, ctx, old_rows, new_rows)
        {
            Ok(out) => out,
            Err(StorageError::Cancelled) => {
                stats.record_query_cancelled();
                return Err(StorageError::Cancelled);
            }
            Err(_) => return Ok(None),
        };
        let aggs: Vec<Agg> = form.state_query.ys.iter().map(|y| y.agg).collect();
        let Some(merged) = cache.try_ivm_merge(&src.state, &delta, &aggs) else {
            // Injected merge fault: silent fallback to the full scan.
            return Ok(None);
        };
        // The merged entry stands in for a full recompute at `version`:
        // its cost is everything the chain has scanned so far.
        let cost = src.cost.saturating_add(scanned);
        let merged = Arc::new(merged);
        let mut inserts = Vec::with_capacity(2);
        let result = if form.augmented {
            let user = Arc::new(crate::cache::ivm_finalize(&merged, query));
            // The state entry is what the *next* tick merges into; the
            // finalized entry is what exact repeats hit.
            inserts.push((
                CacheKey {
                    engine,
                    table_version: version,
                    query: state_key,
                },
                Arc::clone(&merged),
                cost,
            ));
            inserts.push((
                CacheKey::new(engine, version, query),
                Arc::clone(&user),
                cost,
            ));
            user
        } else {
            inserts.push((
                CacheKey::new(engine, version, query),
                Arc::clone(&merged),
                cost,
            ));
            merged
        };
        stats.record_ivm_hit(scanned);
        return Ok(Some(IvmAnswer { result, inserts }));
    }
    Ok(None)
}

/// Execute against a snapshot, recording query count / rows / latency —
/// or, for a cancelled query, the `queries_cancelled` counter.
fn execute_recorded(
    stats: &ExecStats,
    snap: &dyn EngineSnapshot,
    query: &SelectQuery,
    ctx: &QueryCtx,
) -> Result<(ResultTable, u64), StorageError> {
    let start = Instant::now();
    match snap.execute(query, ctx) {
        Ok((result, scanned)) => {
            stats.record_query(scanned, start.elapsed());
            Ok((result, scanned))
        }
        Err(StorageError::Cancelled) => {
            stats.record_query_cancelled();
            Err(StorageError::Cancelled)
        }
        Err(e) => Err(e),
    }
}

/// A queryable backend holding one relation.
pub trait Database: Send + Sync {
    /// Stable engine identifier (used in experiment output and as the
    /// engine half of result-cache keys).
    fn name(&self) -> &'static str;

    /// Pin the engine's current state. Cheap (an `Arc` bump plus one
    /// wrapper allocation); the returned snapshot stays valid and
    /// unchanged however many appends land after it.
    fn pin(&self) -> Arc<dyn EngineSnapshot>;

    /// The current snapshot of the relation this engine serves. Returned
    /// by value because engines may swap the snapshot on append.
    fn table(&self) -> Arc<Table> {
        self.pin().table().clone()
    }

    /// Execute one canonical grouped-aggregate query, bypassing the
    /// result cache (the raw path; also what equivalence tests compare
    /// cached results against).
    fn execute(&self, query: &SelectQuery) -> Result<ResultTable, StorageError> {
        self.execute_ctx(query, &QueryCtx::new())
    }

    /// [`Database::execute`] under an explicit lifecycle ctx: the scan
    /// observes cancellation / deadline / row budget and returns
    /// [`StorageError::Cancelled`] once tripped.
    fn execute_ctx(
        &self,
        query: &SelectQuery,
        ctx: &QueryCtx,
    ) -> Result<ResultTable, StorageError> {
        execute_recorded(self.stats(), &*self.pin(), query, ctx).map(|(rt, _)| rt)
    }

    /// Execution counters.
    fn stats(&self) -> &ExecStats;

    /// The engine-level result cache, if this engine carries one.
    fn result_cache(&self) -> Option<&ResultCache> {
        None
    }

    /// Point-in-time counters of the result cache, if any.
    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.result_cache().map(ResultCache::stats)
    }

    /// Append rows to the relation. Mutating engines bump the table
    /// version (invalidating cached results for free) and refresh their
    /// indexes; the default implementation rejects the append.
    fn append_rows(&self, _rows: &[Vec<Value>]) -> Result<usize, StorageError> {
        Err(StorageError::Unsupported(
            "this engine does not support appends".into(),
        ))
    }

    /// Append a whole same-schema table. Same contract as
    /// [`Database::append_rows`].
    fn append_table(&self, _other: &Table) -> Result<usize, StorageError> {
        Err(StorageError::Unsupported(
            "this engine does not support appends".into(),
        ))
    }

    /// Simulated round-trip latency per batched request (DESIGN.md
    /// substitution 2). Zero by default.
    fn request_overhead(&self) -> Duration {
        Duration::ZERO
    }

    /// Execute a batch of queries as one round trip. The external
    /// optimizations of §5.2 work by shrinking the number of calls made
    /// here; the engine-level result cache shrinks the *scans* behind
    /// them.
    ///
    /// Per query: look up the result cache exactly, then via predicate
    /// subsumption (both answered without touching a base row), then fan
    /// the true misses across the shared pool — multi-query batches use
    /// one worker per query, while a single missing query parallelizes
    /// *inside* the scan (morsel-claimed by default, statically sharded
    /// via [`crate::exec::SchedulingMode::Static`]; see
    /// `exec::run_scheduled`), so the hardware is saturated either way.
    /// Fresh results are offered to
    /// the cache under the pinned snapshot's version at their scan cost
    /// (cost-based admission may decline them): the version only ever
    /// advances, so an entry can never be served after its snapshot is
    /// retired (see [`crate::cache`]).
    ///
    /// Consistency: one snapshot is pinned for the whole batch, so every
    /// answer — hit, derived, or fresh — describes the same table
    /// version even when appends race the request, and that version is
    /// at least as new as the engine's state at request start.
    ///
    /// Results are shared `Arc`s: an exact warm hit returns the cached
    /// allocation itself (pointer bump, zero copies).
    fn run_request(&self, queries: &[SelectQuery]) -> Result<Vec<Arc<ResultTable>>, StorageError> {
        self.run_request_ctx(queries, &QueryCtx::new())
    }

    /// [`Database::run_request`] under an explicit lifecycle ctx. One
    /// ctx covers the whole batch (it represents one user interaction):
    /// cancelling it aborts every in-flight scan of the batch at the
    /// next cancellation point, the request returns
    /// [`StorageError::Cancelled`], and **no** result of the batch —
    /// complete or partial — is inserted into the result cache, so a
    /// cancelled request leaves the cache bit-for-bit as if it never
    /// ran.
    fn run_request_ctx(
        &self,
        queries: &[SelectQuery],
        ctx: &QueryCtx,
    ) -> Result<Vec<Arc<ResultTable>>, StorageError> {
        self.stats().record_request();
        if ctx.is_cancelled() {
            self.stats().record_query_cancelled();
            return Err(StorageError::Cancelled);
        }
        let overhead = self.request_overhead();
        if !overhead.is_zero() {
            std::thread::sleep(overhead);
        }
        let snap = self.pin();
        let Some(cache) = self.result_cache() else {
            return crate::parallel::try_parallel_map(queries.len(), 0, |i| {
                execute_recorded(self.stats(), &*snap, &queries[i], ctx).map(|(rt, _)| Arc::new(rt))
            });
        };
        let version = snap.table().version();
        let engine = self.name();
        let mut results: Vec<Option<Arc<ResultTable>>> = Vec::with_capacity(queries.len());
        let mut misses: Vec<(usize, CacheKey, Option<crate::cache::IvmForm>)> = Vec::new();
        // Derived results are re-inserted only once the whole batch has
        // succeeded: a batch cancelled (or failed) after the probes must
        // leave the cache exactly as it found it.
        let mut derived_inserts: Vec<(CacheKey, Arc<ResultTable>, u64)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let key = CacheKey::new(engine, version, q);
            if let Some(hit) = cache.get(&key) {
                self.stats().record_cache_hit();
                results.push(Some(hit));
            } else if let Some(derived) = cache.lookup_derived(&key) {
                self.stats().record_cache_derived_hit();
                results.push(Some(Arc::clone(&derived.result)));
                derived_inserts.push((key, derived.result, derived.cost));
            } else if let Some(ivm) = try_ivm(self.stats(), cache, &*snap, engine, version, q, ctx)?
            {
                results.push(Some(Arc::clone(&ivm.result)));
                derived_inserts.extend(ivm.inserts);
            } else {
                self.stats().record_cache_miss();
                results.push(None);
                // An AVG query's miss executes its IVM *state* form
                // (AVG→SUM plus a COUNT(*) companion — the same
                // accumulators the kernel keeps anyway) so the state
                // gets cached alongside the finalized result and the
                // next append can delta-merge instead of rescanning.
                let form = crate::cache::ivm_form(q).filter(|f| f.augmented);
                misses.push((i, key, form));
            }
        }
        let fresh = crate::parallel::try_parallel_map(misses.len(), 0, |j| {
            let (i, _, form) = &misses[j];
            match form {
                Some(f) => execute_recorded(self.stats(), &*snap, &f.state_query, ctx).map(
                    |(state, scanned)| {
                        // `sum / n` on the very values the kernel's own
                        // finalize divides — bit-identical to executing
                        // the user query directly.
                        let user = crate::cache::ivm_finalize(&state, &queries[*i]);
                        (user, Some(state), scanned)
                    },
                ),
                None => execute_recorded(self.stats(), &*snap, &queries[*i], ctx)
                    .map(|(rt, scanned)| (rt, None, scanned)),
            }
        })?;
        // The batch committed: make derived answers exact entries (so
        // repeats are plain hits) and offer the fresh scans to the
        // cache at their scan cost.
        let inserts = derived_inserts.into_iter().map(|(key, rt, cost)| {
            let outcome = cache.insert(key, rt, cost);
            (None, outcome)
        });
        let fresh_inserts =
            misses
                .into_iter()
                .zip(fresh)
                .flat_map(|((i, key, form), (rt, state, scanned))| {
                    let rt = Arc::new(rt);
                    let mut out = Vec::with_capacity(2);
                    if let (Some(f), Some(state)) = (form, state) {
                        let state_key = CacheKey {
                            engine,
                            table_version: version,
                            query: QueryKey::of(&f.state_query),
                        };
                        out.push((None, cache.insert(state_key, Arc::new(state), scanned)));
                    }
                    out.push((
                        Some((i, rt.clone())),
                        cache.insert(key, Arc::clone(&rt), scanned),
                    ));
                    out
                });
        for (slot, outcome) in inserts.chain(fresh_inserts) {
            if !outcome.admitted {
                self.stats().record_cache_admission_reject();
            }
            self.stats().record_cache_evictions(outcome.evicted);
            if let Some((i, rt)) = slot {
                results[i] = Some(rt);
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every query either hit or was executed"))
            .collect())
    }
}

/// Convenience alias used throughout the ZQL executor.
pub type DynDatabase = Arc<dyn Database>;
