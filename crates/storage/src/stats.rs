//! Execution statistics. The paper's evaluation plots both wall-clock
//! runtime and the *number of SQL requests* issued to the database
//! (Figures 7.1 and 7.2); this module is how the engines report those.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Thread-safe counters owned by each database backend.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Individual SQL queries executed (one per `execute` call).
    queries: AtomicU64,
    /// Batched round trips (one per `run_request` call). The external
    /// optimizations of §5.2 reduce this number.
    requests: AtomicU64,
    /// Rows visited across all scans.
    rows_scanned: AtomicU64,
    /// Nanoseconds spent inside query execution.
    exec_nanos: AtomicU64,
    /// Queries answered from the engine-level result cache (no scan).
    cache_hits: AtomicU64,
    /// Queries answered by *deriving* from a cached superset result
    /// (predicate subsumption / Z-slice extraction — no scan either).
    cache_derived_hits: AtomicU64,
    /// Queries answered by *delta-merging* appended rows into a cached
    /// ancestor result (incremental view maintenance — only the appended
    /// range was scanned; see `crate::cache`).
    ivm_hits: AtomicU64,
    /// Appended rows scanned by those delta merges. Deliberately kept
    /// out of `rows_scanned` so "warm tick touched only the delta" is
    /// directly assertable from a snapshot.
    ivm_rows_scanned: AtomicU64,
    /// Queries that missed the result cache and executed for real.
    cache_misses: AtomicU64,
    /// Entries evicted from the result cache on this engine's inserts.
    cache_evictions: AtomicU64,
    /// Fresh results the cache declined to admit (cheaper to recompute
    /// than a hash probe — see cost-based admission in `crate::cache`).
    cache_admission_rejects: AtomicU64,
    /// Scans that went parallel under morsel scheduling (see
    /// [`crate::exec::aggregate_morsel`]).
    morsel_scans: AtomicU64,
    /// Morsels dispatched across those scans.
    morsels_dispatched: AtomicU64,
    /// Morsels claimed beyond an even per-worker share — work the
    /// dynamic claiming rebalanced away from overloaded workers.
    morsel_steals: AtomicU64,
    /// Workers that claimed no morsel (scan drained before they ran).
    morsel_idle_workers: AtomicU64,
    /// Queries that returned `StorageError::Cancelled` (explicit cancel,
    /// deadline, supersession, or row budget — see `crate::lifecycle`).
    queries_cancelled: AtomicU64,
    /// Morsels left unclaimed because their query was cancelled
    /// mid-scan (work the cancellation saved).
    morsels_cancelled: AtomicU64,
    /// Parallel scan attempts that failed because a worker panicked
    /// (contained by `catch_unwind`; surfaced as
    /// `StorageError::WorkerPanicked`).
    worker_panics: AtomicU64,
    /// Queries re-attempted at least once after a transient failure
    /// (`zv-server`'s retry policy; counted once per query).
    queries_retried: AtomicU64,
    /// Queries routed to serial execution after parallel attempts kept
    /// failing, or pre-emptively by an open breaker (counted once per
    /// query).
    queries_degraded: AtomicU64,
}

impl ExecStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_query(&self, rows_scanned: u64, elapsed: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.rows_scanned.fetch_add(rows_scanned, Ordering::Relaxed);
        self.exec_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_derived_hit(&self) {
        self.cache_derived_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one query answered by an IVM delta merge that scanned
    /// `delta_rows` appended rows.
    pub fn record_ivm_hit(&self, delta_rows: u64) {
        self.ivm_hits.fetch_add(1, Ordering::Relaxed);
        self.ivm_rows_scanned
            .fetch_add(delta_rows, Ordering::Relaxed);
    }

    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_evictions(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_cache_admission_reject(&self) {
        self.cache_admission_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one query that ended in `StorageError::Cancelled`.
    pub fn record_query_cancelled(&self) {
        self.queries_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Record morsels abandoned unclaimed by a cancelled scan.
    pub fn record_morsels_cancelled(&self, n: u64) {
        self.morsels_cancelled.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one parallel scan attempt killed by a worker panic.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one query that entered the retry path (once per query).
    pub fn record_query_retried(&self) {
        self.queries_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one query degraded to serial execution (once per query).
    pub fn record_query_degraded(&self) {
        self.queries_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one morsel-scheduled scan's claim telemetry into the
    /// counters.
    pub fn record_morsel(&self, m: &crate::exec::MorselMetrics) {
        self.morsel_scans.fetch_add(1, Ordering::Relaxed);
        self.morsels_dispatched
            .fetch_add(m.morsels, Ordering::Relaxed);
        self.morsel_steals.fetch_add(m.steals, Ordering::Relaxed);
        self.morsel_idle_workers
            .fetch_add(m.idle_workers, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            exec_time: Duration::from_nanos(self.exec_nanos.load(Ordering::Relaxed)),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_derived_hits: self.cache_derived_hits.load(Ordering::Relaxed),
            ivm_hits: self.ivm_hits.load(Ordering::Relaxed),
            ivm_rows_scanned: self.ivm_rows_scanned.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_admission_rejects: self.cache_admission_rejects.load(Ordering::Relaxed),
            morsel_scans: self.morsel_scans.load(Ordering::Relaxed),
            morsels_dispatched: self.morsels_dispatched.load(Ordering::Relaxed),
            morsel_steals: self.morsel_steals.load(Ordering::Relaxed),
            morsel_idle_workers: self.morsel_idle_workers.load(Ordering::Relaxed),
            queries_cancelled: self.queries_cancelled.load(Ordering::Relaxed),
            morsels_cancelled: self.morsels_cancelled.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            queries_retried: self.queries_retried.load(Ordering::Relaxed),
            queries_degraded: self.queries_degraded.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.requests.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.exec_nanos.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_derived_hits.store(0, Ordering::Relaxed);
        self.ivm_hits.store(0, Ordering::Relaxed);
        self.ivm_rows_scanned.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.cache_admission_rejects.store(0, Ordering::Relaxed);
        self.morsel_scans.store(0, Ordering::Relaxed);
        self.morsels_dispatched.store(0, Ordering::Relaxed);
        self.morsel_steals.store(0, Ordering::Relaxed);
        self.morsel_idle_workers.store(0, Ordering::Relaxed);
        self.queries_cancelled.store(0, Ordering::Relaxed);
        self.morsels_cancelled.store(0, Ordering::Relaxed);
        self.worker_panics.store(0, Ordering::Relaxed);
        self.queries_retried.store(0, Ordering::Relaxed);
        self.queries_degraded.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`ExecStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub queries: u64,
    pub requests: u64,
    pub rows_scanned: u64,
    pub exec_time: Duration,
    pub cache_hits: u64,
    pub cache_derived_hits: u64,
    /// Queries answered by an IVM delta merge (appended range only).
    pub ivm_hits: u64,
    /// Appended rows scanned by IVM delta merges (not in `rows_scanned`).
    pub ivm_rows_scanned: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_admission_rejects: u64,
    /// Scans that went parallel under morsel scheduling.
    pub morsel_scans: u64,
    /// Morsels dispatched across those scans.
    pub morsels_dispatched: u64,
    /// Morsels claimed beyond an even per-worker share.
    pub morsel_steals: u64,
    /// Workers that claimed no morsel.
    pub morsel_idle_workers: u64,
    /// Queries that returned `StorageError::Cancelled`.
    pub queries_cancelled: u64,
    /// Morsels left unclaimed by cancelled scans.
    pub morsels_cancelled: u64,
    /// Parallel scan attempts killed by a contained worker panic.
    pub worker_panics: u64,
    /// Queries re-attempted after a transient failure (once per query).
    pub queries_retried: u64,
    /// Queries degraded to serial execution (once per query).
    pub queries_degraded: u64,
}

impl StatsSnapshot {
    /// Difference against an earlier snapshot (per-experiment deltas).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries - earlier.queries,
            requests: self.requests - earlier.requests,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            exec_time: self.exec_time.saturating_sub(earlier.exec_time),
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_derived_hits: self.cache_derived_hits - earlier.cache_derived_hits,
            ivm_hits: self.ivm_hits - earlier.ivm_hits,
            ivm_rows_scanned: self.ivm_rows_scanned - earlier.ivm_rows_scanned,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
            cache_admission_rejects: self.cache_admission_rejects - earlier.cache_admission_rejects,
            morsel_scans: self.morsel_scans - earlier.morsel_scans,
            morsels_dispatched: self.morsels_dispatched - earlier.morsels_dispatched,
            morsel_steals: self.morsel_steals - earlier.morsel_steals,
            morsel_idle_workers: self.morsel_idle_workers - earlier.morsel_idle_workers,
            queries_cancelled: self.queries_cancelled - earlier.queries_cancelled,
            morsels_cancelled: self.morsels_cancelled - earlier.morsels_cancelled,
            worker_panics: self.worker_panics - earlier.worker_panics,
            queries_retried: self.queries_retried - earlier.queries_retried,
            queries_degraded: self.queries_degraded - earlier.queries_degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = ExecStats::new();
        s.record_query(100, Duration::from_millis(2));
        s.record_query(50, Duration::from_millis(1));
        s.record_request();
        s.record_cache_hit();
        s.record_cache_derived_hit();
        s.record_ivm_hit(40);
        s.record_cache_miss();
        s.record_cache_evictions(3);
        s.record_cache_admission_reject();
        s.record_query_cancelled();
        s.record_morsels_cancelled(5);
        s.record_worker_panic();
        s.record_query_retried();
        s.record_query_retried();
        s.record_query_degraded();
        s.record_morsel(&crate::exec::MorselMetrics {
            workers: 2,
            morsels: 8,
            steals: 3,
            idle_workers: 1,
            per_worker: vec![7, 1],
        });
        let snap = s.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.rows_scanned, 150);
        assert_eq!(snap.exec_time, Duration::from_millis(3));
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_derived_hits, 1);
        assert_eq!(snap.ivm_hits, 1);
        assert_eq!(snap.ivm_rows_scanned, 40);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_evictions, 3);
        assert_eq!(snap.cache_admission_rejects, 1);
        assert_eq!(snap.morsel_scans, 1);
        assert_eq!(snap.morsels_dispatched, 8);
        assert_eq!(snap.morsel_steals, 3);
        assert_eq!(snap.morsel_idle_workers, 1);
        assert_eq!(snap.queries_cancelled, 1);
        assert_eq!(snap.morsels_cancelled, 5);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.queries_retried, 2);
        assert_eq!(snap.queries_degraded, 1);
    }

    #[test]
    fn reset_and_since() {
        let s = ExecStats::new();
        s.record_query(10, Duration::from_millis(1));
        let first = s.snapshot();
        s.record_query(20, Duration::from_millis(2));
        let delta = s.snapshot().since(&first);
        assert_eq!(delta.queries, 1);
        assert_eq!(delta.rows_scanned, 20);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
