//! The shared execution pool: scoped-thread fan-out used by both the
//! sharded aggregation kernel ([`crate::exec::aggregate_parallel`]) and
//! batched request execution ([`crate::db::Database::run_request`]).
//!
//! There is deliberately no long-lived thread-pool object: workers are
//! `std::thread::scope` threads spawned per fan-out, which keeps every
//! borrow of table columns / compiled predicates lifetime-checked and
//! costs only a few tens of microseconds per query — negligible against
//! the row-scan work this module is gated behind (see
//! `ParallelConfig::min_parallel_rows`).
//!
//! **Nesting guard.** A ZQL flush can fan out across queries *and* each
//! query could fan out across row shards. To avoid `P × P`
//! oversubscription, workers run with a thread-local `IN_POOL` flag set;
//! [`effective_threads`] reports `1` inside a worker, so whichever layer
//! fans out first claims the hardware and inner layers run serially.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// How many worker threads a fan-out should use. `requested == 0` means
/// "auto" (all hardware threads). Returns `1` when called from inside a
/// pool worker (see module docs) so parallel sections never nest.
pub fn effective_threads(requested: usize) -> usize {
    if IN_POOL.with(|c| c.get()) {
        return 1;
    }
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// True while running inside a pool worker.
pub fn in_pool() -> bool {
    IN_POOL.with(|c| c.get())
}

/// Run `n_workers` scoped workers and collect their results in worker
/// order. Worker 0..n-1 each receive their index; results are
/// deterministic given a deterministic `f`.
pub fn run_workers<T: Send, F: Fn(usize) -> T + Sync>(n_workers: usize, f: F) -> Vec<T> {
    assert!(n_workers >= 1);
    if n_workers == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_workers)
            .map(|i| {
                let f = &f;
                s.spawn(move || {
                    IN_POOL.with(|c| c.set(true));
                    f(i)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise the worker's original panic payload so the
                // user sees their assertion message, not a generic one.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Apply a fallible function to `0..n_items` with up to `max_threads`
/// workers (0 = auto), preserving item order. Items are claimed from a
/// shared atomic counter, so uneven per-item cost balances out. Once any
/// item fails, unstarted items are abandoned (matching serial
/// short-circuiting) and the failing item with the lowest index wins.
pub fn try_parallel_map<T, E, F>(n_items: usize, max_threads: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let threads = effective_threads(max_threads).min(n_items.max(1));
    if threads <= 1 || n_items <= 1 {
        return (0..n_items).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T, E>>>> = (0..n_items).map(|_| Mutex::new(None)).collect();
    run_workers(threads, |_| loop {
        if failed.load(Ordering::Relaxed) {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n_items {
            break;
        }
        let r = f(i);
        if r.is_err() {
            failed.store(true, Ordering::Relaxed);
        }
        *crate::fault::lock_recover(&slots[i]) = Some(r);
    });
    let mut out = Vec::with_capacity(n_items);
    let mut first_err: Option<E> = None;
    for slot in slots {
        // A slot writer can only poison its mutex after the assignment
        // completed (plain `Option` store), so the recovered value is
        // intact either way.
        let Some(result) = slot.into_inner().unwrap_or_else(|p| p.into_inner()) else {
            // Abandoned after another item failed.
            continue;
        };
        match result {
            Ok(v) => out.push(v),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Split `n` items into at most `parts` contiguous, near-equal ranges.
/// Deterministic: the same `(n, parts)` always yields the same split,
/// which keeps parallel float accumulation reproducible run-to-run.
pub fn split_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_everything() {
        for n in [0usize, 1, 7, 100, 4097] {
            for parts in [1usize, 2, 3, 8, 64] {
                let ranges = split_ranges(n, parts);
                assert!(ranges.len() <= parts.max(1));
                let mut expect = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, expect);
                    assert!(e >= s);
                    expect = e;
                }
                assert_eq!(expect, n);
            }
        }
    }

    #[test]
    fn parallel_map_preserves_order_and_errors() {
        let out: Result<Vec<usize>, String> = try_parallel_map(100, 4, |i| Ok(i * 2));
        assert_eq!(out.unwrap(), (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let err: Result<Vec<usize>, String> = try_parallel_map(100, 4, |i| {
            if i == 63 {
                Err(format!("boom {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(err.unwrap_err(), "boom 63");
    }

    #[test]
    fn parallel_map_aborts_unstarted_items_after_failure() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ran = AtomicUsize::new(0);
        let err: Result<Vec<usize>, &str> = try_parallel_map(10_000, 4, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err("first item fails")
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
                Ok(i)
            }
        });
        assert_eq!(err.unwrap_err(), "first item fails");
        assert!(
            ran.load(Ordering::Relaxed) < 10_000,
            "remaining items should be abandoned after the failure"
        );
    }

    #[test]
    fn worker_panics_propagate_payload() {
        let caught = std::panic::catch_unwind(|| {
            run_workers(2, |i| {
                if i == 1 {
                    panic!("original worker message");
                }
                i
            })
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "original worker message");
    }

    #[test]
    fn workers_do_not_nest() {
        let nested: Vec<usize> = run_workers(2, |_| effective_threads(8));
        assert_eq!(
            nested,
            vec![1, 1],
            "inside a worker the pool reports one thread"
        );
        assert_ne!(effective_threads(8), 0);
    }

    #[test]
    fn run_workers_ordered_results() {
        assert_eq!(run_workers(4, |i| i * i), vec![0, 1, 4, 9]);
    }
}
