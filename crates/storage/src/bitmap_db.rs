//! The Roaring Bitmap Database (thesis §6.2): a column store that keeps
//! one roaring bitmap per distinct value of every indexed column, answers
//! selection predicates with bitmap algebra, and aggregates by iterating
//! only qualifying rows.
//!
//! Per the paper's default policy, every categorical column is indexed
//! and measure columns are left unindexed; we additionally index
//! low-cardinality integer columns (year, month, ...) because they appear
//! as equality predicates in the canonical query.

use crate::column::Column;
use crate::db::Database;
use crate::exec::{self, compile_pred, RowSource};
use crate::predicate::{Atom, CmpOp, Predicate};
use crate::query::{ResultTable, SelectQuery};
use crate::roaring::RoaringBitmap;
use crate::stats::ExecStats;
use crate::table::{StorageError, Table};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`BitmapDb`].
#[derive(Clone, Debug)]
pub struct BitmapDbConfig {
    /// Integer columns with at most this many distinct values also get
    /// bitmap indexes.
    pub int_index_max_card: usize,
    /// Group-key spaces up to this size use dense accumulation; beyond it
    /// the engine pays a hash lookup per row — the behaviour the paper
    /// observed "as the number of groups increases" (Figure 7.5a).
    pub dense_group_limit: u128,
    /// Simulated client↔server round-trip latency added per request
    /// (substitution for the paper's networked PostgreSQL; see DESIGN.md).
    pub request_overhead: Duration,
    /// Run-optimize indexes after build (RLE compression).
    pub run_optimize: bool,
    /// Sharded-scan tuning (thread count, serial threshold).
    pub parallel: exec::ParallelConfig,
}

impl Default for BitmapDbConfig {
    fn default() -> Self {
        BitmapDbConfig {
            int_index_max_card: 4096,
            dense_group_limit: 1 << 10,
            request_overhead: Duration::ZERO,
            run_optimize: true,
            parallel: exec::ParallelConfig::default(),
        }
    }
}

/// One indexed column: a bitmap of row ids per distinct-value code.
struct ColumnIndex {
    /// `bitmaps[code]` = rows where the column equals the value with that
    /// code. For int columns the code is `value - min`.
    bitmaps: Vec<RoaringBitmap>,
    /// For integer indexes: the value of code 0.
    int_min: i64,
    is_int: bool,
}

impl ColumnIndex {
    fn lookup_cat(&self, code: u32) -> Option<&RoaringBitmap> {
        self.bitmaps.get(code as usize)
    }

    fn lookup_int(&self, value: i64) -> Option<&RoaringBitmap> {
        if !self.is_int {
            return None;
        }
        let off = value.checked_sub(self.int_min)?;
        if off < 0 {
            return None;
        }
        self.bitmaps.get(off as usize)
    }
}

/// In-memory database with roaring-bitmap secondary indexes.
pub struct BitmapDb {
    table: Arc<Table>,
    indexes: HashMap<String, ColumnIndex>,
    config: BitmapDbConfig,
    stats: ExecStats,
}

impl BitmapDb {
    pub fn new(table: Arc<Table>) -> Self {
        Self::with_config(table, BitmapDbConfig::default())
    }

    pub fn with_config(table: Arc<Table>, config: BitmapDbConfig) -> Self {
        let mut indexes = HashMap::new();
        for field in table.schema().fields() {
            match table.column(&field.name).unwrap() {
                Column::Cat(c) => {
                    let mut bitmaps: Vec<RoaringBitmap> =
                        (0..c.cardinality()).map(|_| RoaringBitmap::new()).collect();
                    for (row, &code) in c.codes().iter().enumerate() {
                        bitmaps[code as usize].push_ascending(row as u32);
                    }
                    if config.run_optimize {
                        for bm in &mut bitmaps {
                            bm.run_optimize();
                        }
                    }
                    indexes.insert(
                        field.name.clone(),
                        ColumnIndex {
                            bitmaps,
                            int_min: 0,
                            is_int: false,
                        },
                    );
                }
                Column::Int(v) => {
                    if v.is_empty() {
                        continue;
                    }
                    let lo = *v.iter().min().unwrap();
                    let hi = *v.iter().max().unwrap();
                    let card = (hi - lo + 1) as u128;
                    if card <= config.int_index_max_card as u128 {
                        let mut bitmaps: Vec<RoaringBitmap> =
                            (0..card as usize).map(|_| RoaringBitmap::new()).collect();
                        for (row, &val) in v.iter().enumerate() {
                            bitmaps[(val - lo) as usize].push_ascending(row as u32);
                        }
                        if config.run_optimize {
                            for bm in &mut bitmaps {
                                bm.run_optimize();
                            }
                        }
                        indexes.insert(
                            field.name.clone(),
                            ColumnIndex {
                                bitmaps,
                                int_min: lo,
                                is_int: true,
                            },
                        );
                    }
                }
                Column::Float(_) => {}
            }
        }
        BitmapDb {
            table,
            indexes,
            config,
            stats: ExecStats::new(),
        }
    }

    pub fn config(&self) -> &BitmapDbConfig {
        &self.config
    }

    /// Total bytes held by bitmap indexes (compression reporting).
    pub fn index_bytes(&self) -> usize {
        self.indexes
            .values()
            .flat_map(|ix| ix.bitmaps.iter())
            .map(RoaringBitmap::size_bytes)
            .sum()
    }

    pub fn is_indexed(&self, col: &str) -> bool {
        self.indexes.contains_key(col)
    }

    /// Resolve one atom via the indexes, if possible.
    fn atom_bitmap(&self, atom: &Atom) -> Option<RoaringBitmap> {
        let ix = self.indexes.get(atom.column())?;
        match atom {
            Atom::CatEq { col, value } => {
                let c = self.table.column(col).ok()?.as_cat()?;
                match c.code_of(value) {
                    Some(code) => ix.lookup_cat(code).cloned(),
                    None => Some(RoaringBitmap::new()),
                }
            }
            Atom::CatNeq { col, value } => {
                let c = self.table.column(col).ok()?.as_cat()?;
                let all = self.all_rows();
                match c.code_of(value) {
                    Some(code) => Some(all.and_not(ix.lookup_cat(code)?)),
                    None => Some(all),
                }
            }
            Atom::CatIn { col, values } => {
                let c = self.table.column(col).ok()?.as_cat()?;
                let mut acc = RoaringBitmap::new();
                for v in values {
                    if let Some(code) = c.code_of(v) {
                        acc = acc.or(ix.lookup_cat(code)?);
                    }
                }
                Some(acc)
            }
            Atom::NumCmp {
                op: CmpOp::Eq,
                value,
                ..
            } if ix.is_int => {
                if value.fract() != 0.0 {
                    return Some(RoaringBitmap::new());
                }
                Some(ix.lookup_int(*value as i64).cloned().unwrap_or_default())
            }
            Atom::NumBetween { lo, hi, .. } if ix.is_int => {
                let lo_i = lo.ceil() as i64;
                let hi_i = hi.floor() as i64;
                let mut acc = RoaringBitmap::new();
                for v in lo_i..=hi_i {
                    if let Some(bm) = ix.lookup_int(v) {
                        acc = acc.or(bm);
                    }
                }
                Some(acc)
            }
            Atom::StrPrefix { col, prefix } => {
                let c = self.table.column(col).ok()?.as_cat()?;
                let mut acc = RoaringBitmap::new();
                for (code, s) in c.dict().iter().enumerate() {
                    if s.starts_with(prefix.as_str()) {
                        acc = acc.or(ix.lookup_cat(code as u32)?);
                    }
                }
                Some(acc)
            }
            _ => None,
        }
    }

    fn all_rows(&self) -> RoaringBitmap {
        RoaringBitmap::from_sorted_iter(0..self.table.num_rows() as u32)
    }

    /// Build the row source: bitmap-resolved atoms ANDed, residual atoms
    /// left as a per-row filter.
    fn row_source(&self, pred: &Predicate) -> Result<RowSource<'_>, StorageError> {
        let n = self.table.num_rows();
        match pred {
            Predicate::True => Ok(RowSource::All(n)),
            Predicate::And(atoms) => {
                let mut bitmaps: Vec<RoaringBitmap> = Vec::new();
                let mut residual: Vec<Atom> = Vec::new();
                for a in atoms {
                    match self.atom_bitmap(a) {
                        Some(bm) => bitmaps.push(bm),
                        None => residual.push(a.clone()),
                    }
                }
                if bitmaps.is_empty() {
                    let pred = compile_pred(&self.table, &Predicate::And(residual.clone()))?;
                    return Ok(RowSource::Filtered { n_rows: n, pred });
                }
                // AND cheapest-first.
                bitmaps.sort_by_key(|b| b.len());
                let mut acc = bitmaps[0].clone();
                for bm in &bitmaps[1..] {
                    acc = acc.and(bm);
                    if acc.is_empty() {
                        break;
                    }
                }
                if residual.is_empty() {
                    Ok(RowSource::Bitmap(acc))
                } else {
                    let pred = compile_pred(&self.table, &Predicate::And(residual))?;
                    Ok(RowSource::BitmapFiltered { rows: acc, pred })
                }
            }
            Predicate::Or(disj) => {
                // Fully-indexable disjunctions resolve via bitmap algebra;
                // otherwise fall back to a filtered scan.
                let mut acc = RoaringBitmap::new();
                for conj in disj {
                    let mut conj_bm: Option<RoaringBitmap> = None;
                    for a in conj {
                        match self.atom_bitmap(a) {
                            Some(bm) => {
                                conj_bm = Some(match conj_bm {
                                    Some(prev) => prev.and(&bm),
                                    None => bm,
                                })
                            }
                            None => {
                                let pred = compile_pred(&self.table, pred)?;
                                return Ok(RowSource::Filtered { n_rows: n, pred });
                            }
                        }
                    }
                    acc = acc.or(&conj_bm.unwrap_or_else(|| self.all_rows()));
                }
                Ok(RowSource::Bitmap(acc))
            }
        }
    }
}

impl Database for BitmapDb {
    fn name(&self) -> &'static str {
        "roaring-bitmap-db"
    }

    fn table(&self) -> &Arc<Table> {
        &self.table
    }

    fn execute(&self, query: &SelectQuery) -> Result<ResultTable, StorageError> {
        let start = Instant::now();
        let source = self.row_source(&query.predicate)?;
        let groups = exec::group_space(&self.table, query)?;
        let strategy = exec::choose_strategy(groups, self.config.dense_group_limit);
        let threads = self.config.parallel.threads_for(source.estimated_rows());
        let (result, scanned) = if threads > 1 {
            exec::aggregate_parallel(&self.table, query, &source, strategy, threads)?
        } else {
            exec::aggregate(&self.table, query, &source, strategy)?
        };
        self.stats.record_query(scanned, start.elapsed());
        Ok(result)
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn request_overhead(&self) -> Duration {
        self.config.request_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{XSpec, YSpec};
    use crate::table::{Field, Schema, TableBuilder};
    use crate::value::{DataType, Value};

    fn db() -> BitmapDb {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("location", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        let rows = [
            (2014, "chair", "US", 10.0),
            (2014, "chair", "US", 5.0),
            (2015, "chair", "US", 20.0),
            (2014, "desk", "US", 7.0),
            (2015, "desk", "UK", 9.0),
            (2015, "chair", "UK", 11.0),
        ];
        for (y, p, l, s) in rows {
            b.push_row(vec![
                Value::Int(y),
                Value::str(p),
                Value::str(l),
                Value::Float(s),
            ])
            .unwrap();
        }
        BitmapDb::new(b.finish_shared())
    }

    #[test]
    fn builds_indexes_for_cat_and_small_int() {
        let db = db();
        assert!(db.is_indexed("product"));
        assert!(db.is_indexed("location"));
        assert!(db.is_indexed("year")); // card 2 ≤ 4096
        assert!(!db.is_indexed("sales")); // measure column unindexed
        assert!(db.index_bytes() > 0);
    }

    #[test]
    fn bitmap_selection_scans_only_matching_rows() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("location", "UK"));
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(
            delta.rows_scanned, 2,
            "only the two UK rows should be visited"
        );
        assert_eq!(rt.groups[0].ys[0], vec![20.0]);
    }

    #[test]
    fn conjunction_of_indexed_atoms() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(
            Predicate::cat_eq("product", "chair").and(Predicate::cat_eq("location", "US")),
        );
        let rt = db.execute(&q).unwrap();
        let g = &rt.groups[0];
        assert_eq!(g.xs, vec![Value::Int(2014), Value::Int(2015)]);
        assert_eq!(g.ys[0], vec![15.0, 20.0]);
    }

    #[test]
    fn int_equality_uses_index() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::num_eq("year", 2015.0));
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.rows_scanned, 3);
        assert_eq!(rt.groups[0].ys[0], vec![40.0]);
    }

    #[test]
    fn residual_predicate_on_measure_column() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(
            Predicate::cat_eq("product", "chair").and(Predicate::atom(Atom::NumCmp {
                col: "sales".into(),
                op: CmpOp::Gt,
                value: 9.0,
            })),
        );
        let rt = db.execute(&q).unwrap();
        let g = &rt.groups[0];
        // chair rows with sales > 9: (2014,10), (2015,20), (2015,11)
        assert_eq!(g.xs, vec![Value::Int(2014), Value::Int(2015)]);
        assert_eq!(g.ys[0], vec![10.0, 31.0]);
    }

    #[test]
    fn indexed_disjunction() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(
            Predicate::Or(vec![
                vec![Atom::CatEq {
                    col: "product".into(),
                    value: "desk".into(),
                }],
                vec![Atom::CatEq {
                    col: "location".into(),
                    value: "UK".into(),
                }],
            ]),
        );
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.rows_scanned, 3); // rows 3,4,5
        let g = &rt.groups[0];
        assert_eq!(g.ys[0], vec![7.0, 20.0]);
    }

    #[test]
    fn missing_dictionary_value_yields_empty() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("product", "sofa"));
        assert!(db.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn request_counting() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        db.run_request(&[q.clone(), q.clone(), q]).unwrap();
        let snap = db.stats().snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.queries, 3);
    }
}
