//! The Roaring Bitmap Database (thesis §6.2): a column store that keeps
//! one roaring bitmap per distinct value of every indexed column, answers
//! selection predicates with bitmap algebra, and aggregates by iterating
//! only qualifying rows.
//!
//! Per the paper's default policy, every categorical column is indexed
//! and measure columns are left unindexed; we additionally index
//! low-cardinality integer columns (year, month, ...) because they appear
//! as equality predicates in the canonical query.
//!
//! Table and indexes live together in one immutable `BitmapState`
//! snapshot (shared via `Arc`), so they always describe the same data and
//! queries scan lock-free. Appends copy-on-write the next snapshot
//! (bumping the table version, which retires every cached result — see
//! [`crate::cache`]) and refresh the indexes *incrementally*: appended
//! row ids are strictly ascending, so each new row is an O(1)
//! `push_ascending` into its value bitmap; only an integer column whose
//! value range grew out of its existing code space pays a full
//! per-column rebuild.

use crate::cache::{CacheConfig, ResultCache};
use crate::column::Column;
use crate::db::{Database, EngineSnapshot};
use crate::exec::{self, compile_pred, RowSource};
use crate::lifecycle::QueryCtx;
use crate::persist::{PersistOptions, Persistence};
use crate::predicate::{Atom, CmpOp, Predicate};
use crate::query::{ResultTable, SelectQuery};
use crate::roaring::RoaringBitmap;
use crate::stats::ExecStats;
use crate::table::{StorageError, Table};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Tuning knobs for [`BitmapDb`].
#[derive(Clone, Debug)]
pub struct BitmapDbConfig {
    /// Integer columns with at most this many distinct values also get
    /// bitmap indexes.
    pub int_index_max_card: usize,
    /// Group-key spaces up to this size use dense accumulation; beyond it
    /// the engine pays a hash lookup per row — the behaviour the paper
    /// observed "as the number of groups increases" (Figure 7.5a).
    pub dense_group_limit: u128,
    /// Simulated client↔server round-trip latency added per request
    /// (substitution for the paper's networked PostgreSQL; see DESIGN.md).
    pub request_overhead: Duration,
    /// Run-optimize indexes after build (RLE compression).
    pub run_optimize: bool,
    /// Parallel-scan tuning (thread count, serial threshold, scheduling
    /// mode). The default consults the `ZV_SCHED_*` environment
    /// overrides ([`exec::ParallelConfig::from_env`]) so CI can force a
    /// scheduling configuration across whole test suites.
    pub parallel: exec::ParallelConfig,
    /// Engine-level result cache bounds ([`CacheConfig::disabled`] turns
    /// the cache off, e.g. for raw-engine benchmarks).
    pub cache: CacheConfig,
}

impl Default for BitmapDbConfig {
    fn default() -> Self {
        BitmapDbConfig {
            int_index_max_card: 4096,
            dense_group_limit: 1 << 10,
            request_overhead: Duration::ZERO,
            run_optimize: true,
            parallel: exec::ParallelConfig::from_env(),
            cache: CacheConfig::default(),
        }
    }
}

impl BitmapDbConfig {
    /// Default config with the result cache off — for benchmarks and
    /// tests that measure (or compare against) raw engine behaviour.
    pub fn uncached() -> Self {
        BitmapDbConfig {
            cache: CacheConfig::disabled(),
            ..Default::default()
        }
    }
}

/// One indexed column: a bitmap of row ids per distinct-value code.
#[derive(Clone)]
struct ColumnIndex {
    /// `bitmaps[code]` = rows where the column equals the value with that
    /// code. For int columns the code is `value - min`.
    bitmaps: Vec<RoaringBitmap>,
    /// For integer indexes: the value of code 0.
    int_min: i64,
    is_int: bool,
}

impl ColumnIndex {
    fn lookup_cat(&self, code: u32) -> Option<&RoaringBitmap> {
        self.bitmaps.get(code as usize)
    }

    fn lookup_int(&self, value: i64) -> Option<&RoaringBitmap> {
        if !self.is_int {
            return None;
        }
        let off = value.checked_sub(self.int_min)?;
        if off < 0 {
            return None;
        }
        self.bitmaps.get(off as usize)
    }
}

/// One consistent snapshot: the table plus the indexes built over it.
#[derive(Clone)]
struct BitmapState {
    table: Arc<Table>,
    indexes: HashMap<String, ColumnIndex>,
    /// Int columns whose value range already exceeded the cardinality
    /// budget. A column's range only ever grows, so once a build fails it
    /// can never succeed again — remembering that spares every later
    /// append the O(n) min/max rescan of the column.
    unindexable: HashSet<String>,
}

fn build_cat_index(c: &crate::column::CatColumn, run_optimize: bool) -> ColumnIndex {
    let mut bitmaps: Vec<RoaringBitmap> =
        (0..c.cardinality()).map(|_| RoaringBitmap::new()).collect();
    c.codes().for_each_range(0, c.len(), |row, code| {
        bitmaps[code as usize].push_ascending(row as u32);
    });
    if run_optimize {
        for bm in &mut bitmaps {
            bm.run_optimize();
        }
    }
    ColumnIndex {
        bitmaps,
        int_min: 0,
        is_int: false,
    }
}

fn build_int_index(v: &crate::column::IntColumn, config: &BitmapDbConfig) -> Option<ColumnIndex> {
    // Chunk-stat fold: O(chunks + tail), not a full O(n) value scan.
    let (lo, hi) = v.minmax(0, v.len())?;
    // i128 arithmetic: the value range can exceed i64 (e.g. a sentinel
    // near i64::MAX next to negative values).
    let card = (hi as i128 - lo as i128 + 1) as u128;
    if card > config.int_index_max_card as u128 {
        return None;
    }
    let mut bitmaps: Vec<RoaringBitmap> =
        (0..card as usize).map(|_| RoaringBitmap::new()).collect();
    v.for_each_range(0, v.len(), |row, val| {
        bitmaps[(val - lo) as usize].push_ascending(row as u32);
    });
    if config.run_optimize {
        for bm in &mut bitmaps {
            bm.run_optimize();
        }
    }
    Some(ColumnIndex {
        bitmaps,
        int_min: lo,
        is_int: true,
    })
}

fn build_state(table: Arc<Table>, config: &BitmapDbConfig) -> BitmapState {
    let mut indexes = HashMap::new();
    let mut unindexable = HashSet::new();
    for field in table.schema().fields() {
        match table.column(&field.name).unwrap() {
            Column::Cat(c) => {
                indexes.insert(field.name.clone(), build_cat_index(c, config.run_optimize));
            }
            Column::Int(v) => match build_int_index(v, config) {
                Some(ix) => {
                    indexes.insert(field.name.clone(), ix);
                }
                // Empty columns may become indexable after an append;
                // budget-exceeding ones never can (the range only grows).
                None if !v.is_empty() => {
                    unindexable.insert(field.name.clone());
                }
                None => {}
            },
            Column::Float(_) => {}
        }
    }
    BitmapState {
        table,
        indexes,
        unindexable,
    }
}

/// Sorted, deduplicated code list of one append batch (so each touched
/// bitmap is re-compressed exactly once).
fn dedup_codes(codes: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut out: Vec<usize> = codes.collect();
    out.sort_unstable();
    out.dedup();
    out
}

impl BitmapState {
    /// Bring the indexes up to date after rows `old_rows..` were appended
    /// to `self.table`. Appended row ids are ascending and larger than
    /// anything indexed, so the common case is an O(1) tail append per
    /// row; an integer index whose value range grew falls back to a full
    /// per-column rebuild (or is dropped if it outgrew the cardinality
    /// budget — residual predicate scans stay correct without it).
    fn refresh_indexes(&mut self, old_rows: usize, config: &BitmapDbConfig) {
        let table = &self.table;
        let indexes = &mut self.indexes;
        let unindexable = &mut self.unindexable;
        for field in table.schema().fields() {
            match table.column(&field.name).unwrap() {
                Column::Cat(c) => {
                    let ix = indexes
                        .get_mut(&field.name)
                        .expect("categorical columns are always indexed");
                    // New dictionary codes get fresh (empty) bitmaps.
                    while ix.bitmaps.len() < c.cardinality() {
                        ix.bitmaps.push(RoaringBitmap::new());
                    }
                    let mut batch: Vec<usize> = Vec::new();
                    c.codes().for_each_range(old_rows, c.len(), |row, code| {
                        ix.bitmaps[code as usize].push_ascending(row as u32);
                        batch.push(code as usize);
                    });
                    if config.run_optimize {
                        // Appends devolve run containers; re-compress
                        // each bitmap this batch touched, once.
                        for code in dedup_codes(batch.into_iter()) {
                            ix.bitmaps[code].run_optimize();
                        }
                    }
                }
                Column::Int(v) => {
                    if unindexable.contains(&field.name) {
                        // A previously failed build can never succeed —
                        // the range only grows. Skip the O(n) rescan.
                        continue;
                    }
                    if let Some(ix) = indexes.get_mut(&field.name) {
                        let len = ix.bitmaps.len() as i64;
                        let int_min = ix.int_min;
                        // checked_sub: the offset can overflow i64 for
                        // extreme appended values; overflow means
                        // out-of-range, never a panic.
                        let mut in_range = true;
                        v.for_each_range(old_rows, v.len(), |_, x| {
                            in_range &= matches!(
                                x.checked_sub(int_min), Some(o) if (0..len).contains(&o)
                            );
                        });
                        if in_range {
                            let mut batch: Vec<usize> = Vec::new();
                            v.for_each_range(old_rows, v.len(), |row, val| {
                                ix.bitmaps[(val - int_min) as usize].push_ascending(row as u32);
                                batch.push((val - int_min) as usize);
                            });
                            if config.run_optimize {
                                // Appends devolve run containers;
                                // re-compress each touched bitmap, once.
                                for code in dedup_codes(batch.into_iter()) {
                                    ix.bitmaps[code].run_optimize();
                                }
                            }
                            continue;
                        }
                        indexes.remove(&field.name);
                    }
                    // Out-of-range append, or the column only now became
                    // indexable (e.g. it was empty at build time).
                    match build_int_index(v, config) {
                        Some(ix) => {
                            indexes.insert(field.name.clone(), ix);
                        }
                        None if !v.is_empty() => {
                            unindexable.insert(field.name.clone());
                        }
                        None => {}
                    }
                }
                Column::Float(_) => {}
            }
        }
    }

    /// Resolve one atom via the indexes, if possible.
    fn atom_bitmap(&self, atom: &Atom) -> Option<RoaringBitmap> {
        let ix = self.indexes.get(atom.column())?;
        match atom {
            Atom::CatEq { col, value } => {
                let c = self.table.column(col).ok()?.as_cat()?;
                match c.code_of(value) {
                    Some(code) => ix.lookup_cat(code).cloned(),
                    None => Some(RoaringBitmap::new()),
                }
            }
            Atom::CatNeq { col, value } => {
                let c = self.table.column(col).ok()?.as_cat()?;
                let all = self.all_rows();
                match c.code_of(value) {
                    Some(code) => Some(all.and_not(ix.lookup_cat(code)?)),
                    None => Some(all),
                }
            }
            Atom::CatIn { col, values } => {
                let c = self.table.column(col).ok()?.as_cat()?;
                let mut acc = RoaringBitmap::new();
                for v in values {
                    if let Some(code) = c.code_of(v) {
                        acc = acc.or(ix.lookup_cat(code)?);
                    }
                }
                Some(acc)
            }
            Atom::NumCmp {
                op: CmpOp::Eq,
                value,
                ..
            } if ix.is_int => {
                if value.fract() != 0.0 {
                    return Some(RoaringBitmap::new());
                }
                Some(ix.lookup_int(*value as i64).cloned().unwrap_or_default())
            }
            Atom::NumBetween { lo, hi, .. } if ix.is_int => {
                let lo_i = lo.ceil() as i64;
                let hi_i = hi.floor() as i64;
                let mut acc = RoaringBitmap::new();
                for v in lo_i..=hi_i {
                    if let Some(bm) = ix.lookup_int(v) {
                        acc = acc.or(bm);
                    }
                }
                Some(acc)
            }
            Atom::StrPrefix { col, prefix } => {
                let c = self.table.column(col).ok()?.as_cat()?;
                let mut acc = RoaringBitmap::new();
                for (code, s) in c.dict().iter().enumerate() {
                    if s.starts_with(prefix.as_str()) {
                        acc = acc.or(ix.lookup_cat(code as u32)?);
                    }
                }
                Some(acc)
            }
            _ => None,
        }
    }

    fn all_rows(&self) -> RoaringBitmap {
        RoaringBitmap::from_sorted_iter(0..self.table.num_rows() as u32)
    }

    /// Build the row source: bitmap-resolved atoms ANDed, residual atoms
    /// left as a per-row filter.
    fn row_source(&self, pred: &Predicate) -> Result<RowSource<'_>, StorageError> {
        let n = self.table.num_rows();
        match pred {
            Predicate::True => Ok(RowSource::All(n)),
            Predicate::And(atoms) => {
                let mut bitmaps: Vec<RoaringBitmap> = Vec::new();
                let mut residual: Vec<Atom> = Vec::new();
                for a in atoms {
                    match self.atom_bitmap(a) {
                        Some(bm) => bitmaps.push(bm),
                        None => residual.push(a.clone()),
                    }
                }
                if bitmaps.is_empty() {
                    let pred = compile_pred(&self.table, &Predicate::And(residual.clone()))?;
                    return Ok(RowSource::Filtered { n_rows: n, pred });
                }
                // AND cheapest-first.
                bitmaps.sort_by_key(|b| b.len());
                let mut acc = bitmaps[0].clone();
                for bm in &bitmaps[1..] {
                    acc = acc.and(bm);
                    if acc.is_empty() {
                        break;
                    }
                }
                if residual.is_empty() {
                    Ok(RowSource::Bitmap(acc))
                } else {
                    let pred = compile_pred(&self.table, &Predicate::And(residual))?;
                    Ok(RowSource::BitmapFiltered { rows: acc, pred })
                }
            }
            Predicate::Or(disj) => {
                // Fully-indexable disjunctions resolve via bitmap algebra;
                // otherwise fall back to a filtered scan.
                let mut acc = RoaringBitmap::new();
                for conj in disj {
                    let mut conj_bm: Option<RoaringBitmap> = None;
                    for a in conj {
                        match self.atom_bitmap(a) {
                            Some(bm) => {
                                conj_bm = Some(match conj_bm {
                                    Some(prev) => prev.and(&bm),
                                    None => bm,
                                })
                            }
                            None => {
                                let pred = compile_pred(&self.table, pred)?;
                                return Ok(RowSource::Filtered { n_rows: n, pred });
                            }
                        }
                    }
                    acc = acc.or(&conj_bm.unwrap_or_else(|| self.all_rows()));
                }
                Ok(RowSource::Bitmap(acc))
            }
        }
    }
}

/// In-memory database with roaring-bitmap secondary indexes.
///
/// The snapshot lives behind `RwLock<Arc<BitmapState>>`: queries clone
/// the `Arc` (a pointer bump) and scan lock-free, so a long scan never
/// blocks an append and vice versa. Appends serialize on `append_lock`,
/// build the next snapshot *outside* the reader-visible lock, and swap
/// it in with a momentary write lock.
pub struct BitmapDb {
    state: RwLock<Arc<BitmapState>>,
    /// Serializes mutations so two appends cannot base their snapshots
    /// on the same predecessor (readers never touch this).
    append_lock: Mutex<()>,
    config: BitmapDbConfig,
    /// Shared with pinned snapshots, so scan telemetry recorded during
    /// snapshot execution lands on the engine's counters.
    stats: Arc<ExecStats>,
    cache: Option<Arc<ResultCache>>,
    /// Durable-storage handle ([`BitmapDb::open_durable`]); `None` for
    /// memory-only engines.
    persist: Option<Arc<Persistence>>,
}

impl BitmapDb {
    pub fn new(table: Arc<Table>) -> Self {
        Self::with_config(table, BitmapDbConfig::default())
    }

    pub fn with_config(table: Arc<Table>, config: BitmapDbConfig) -> Self {
        let cache = config.cache.is_enabled().then(|| {
            Arc::new(ResultCache::with_fault(
                &config.cache,
                config.parallel.fault,
            ))
        });
        Self::build(table, config, cache)
    }

    /// Construct with an explicitly shared cache (versioned keys keep
    /// entries from different engines / snapshots apart).
    pub fn with_shared_cache(
        table: Arc<Table>,
        config: BitmapDbConfig,
        cache: Arc<ResultCache>,
    ) -> Self {
        Self::build(table, config, Some(cache))
    }

    fn build(table: Arc<Table>, config: BitmapDbConfig, cache: Option<Arc<ResultCache>>) -> Self {
        BitmapDb {
            state: RwLock::new(Arc::new(build_state(table, &config))),
            append_lock: Mutex::new(()),
            config,
            stats: Arc::new(ExecStats::new()),
            cache,
            persist: None,
        }
    }

    /// Open a durable engine on `dir`: recover the newest valid
    /// snapshot plus the WAL tail (crash-exact — see [`crate::persist`]),
    /// or seed a fresh directory with `init()` and checkpoint it. Every
    /// committed append is WAL-logged and fsynced *before* it becomes
    /// visible to queries, so the in-memory table version is always a
    /// durable version. Bitmap indexes are rebuilt from the recovered
    /// table — they are derived state and never hit the disk.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        config: BitmapDbConfig,
        init: impl FnOnce() -> Arc<Table>,
    ) -> Result<Self, StorageError> {
        let (persistence, recovered) = Persistence::open(
            dir,
            PersistOptions {
                fault: config.parallel.fault,
            },
        )?;
        let table = match recovered {
            Some(t) => Arc::new(t),
            None => {
                let t = init();
                persistence.checkpoint(&t)?;
                t
            }
        };
        let mut db = Self::with_config(table, config);
        db.persist = Some(Arc::new(persistence));
        Ok(db)
    }

    /// The durable-storage handle, when this engine was opened with
    /// [`BitmapDb::open_durable`].
    pub fn persistence(&self) -> Option<&Persistence> {
        self.persist.as_deref()
    }

    /// Write a full snapshot of the current table and reset the WAL.
    /// Serialized against appends, so no committed batch can be lost
    /// between the snapshot and the WAL reset.
    pub fn checkpoint(&self) -> Result<PathBuf, StorageError> {
        let persist = self
            .persist
            .as_ref()
            .ok_or_else(|| StorageError::Io("engine has no data directory".into()))?;
        let _appending = crate::fault::lock_recover(&self.append_lock);
        let table = self.state().table.clone();
        persist.checkpoint(&table)
    }

    pub fn config(&self) -> &BitmapDbConfig {
        &self.config
    }

    fn state(&self) -> Arc<BitmapState> {
        // Recover-or-proceed: the lock only ever guards an `Arc` swap,
        // so a poisoned lock still holds an intact snapshot (either the
        // old or the new state) — unwrapping would wedge the engine
        // after any contained panic.
        crate::fault::read_recover(&self.state).clone()
    }

    /// Poison the state lock by panicking while holding its write
    /// guard — the chaos suite's hook for proving the engine recovers
    /// (the guarded value is a plain `Arc`, so recovery is safe).
    #[doc(hidden)]
    pub fn poison_table_lock_for_chaos(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.state.write().unwrap_or_else(|p| p.into_inner());
            panic!(
                "{} deliberate state-lock poisoning",
                crate::fault::PANIC_MARKER
            );
        }));
    }

    /// Total bytes held by bitmap indexes (compression reporting).
    pub fn index_bytes(&self) -> usize {
        self.state()
            .indexes
            .values()
            .flat_map(|ix| ix.bitmaps.iter())
            .map(RoaringBitmap::size_bytes)
            .sum()
    }

    pub fn is_indexed(&self, col: &str) -> bool {
        self.state().indexes.contains_key(col)
    }

    /// Swap in a mutated table built by `mutate` and refresh the indexes
    /// incrementally; returns the appended row count. The table clone and
    /// index refresh run outside the reader-visible lock — queries keep
    /// scanning the old snapshot throughout.
    fn mutate_table(
        &self,
        mutate: impl FnOnce(&mut Table) -> Result<usize, StorageError>,
        log: impl FnOnce(&Persistence, &Table) -> Result<(), StorageError>,
    ) -> Result<usize, StorageError> {
        let _appending = crate::fault::lock_recover(&self.append_lock);
        let current = self.state();
        let mut table = (*current.table).clone();
        let old_version = table.version();
        let old_rows = table.num_rows();
        let n = mutate(&mut table)?;
        if n == 0 && table.version() == old_version {
            return Ok(0);
        }
        // Durability before visibility: the batch must reach the WAL
        // (fsynced, encoded straight from the caller's borrowed batch)
        // before any reader can observe the new snapshot.
        if let Some(persist) = &self.persist {
            log(persist, &table)?;
        }
        let mut next = BitmapState {
            table: Arc::new(table),
            indexes: current.indexes.clone(),
            unindexable: current.unindexable.clone(),
        };
        next.refresh_indexes(old_rows, &self.config);
        *crate::fault::write_recover(&self.state) = Arc::new(next);
        // The old version's cache entries are deliberately *kept*: they
        // are unreachable for exact lookups (versioned keys) but serve
        // as IVM merge ancestors for post-append queries; the LRU
        // reclaims them once the workload moves on.
        Ok(n)
    }
}

/// A pinned [`BitmapDb`] view: one immutable [`BitmapState`] (table +
/// the indexes built over exactly that table) plus the execution tuning
/// frozen at pin time.
struct BitmapSnapshot {
    state: Arc<BitmapState>,
    dense_group_limit: u128,
    parallel: exec::ParallelConfig,
    stats: Arc<ExecStats>,
}

impl EngineSnapshot for BitmapSnapshot {
    fn table(&self) -> &Arc<Table> {
        &self.state.table
    }

    fn execute(
        &self,
        query: &SelectQuery,
        ctx: &QueryCtx,
    ) -> Result<(ResultTable, u64), StorageError> {
        let state = &self.state;
        let source = state.row_source(&query.predicate)?;
        let groups = exec::group_space(&state.table, query)?;
        let strategy = exec::choose_strategy(groups, self.dense_group_limit);
        // A degraded query (`QueryCtx::force_serial`, set by the retry
        // ladder or the breaker) is pinned to the injection-free serial
        // path no matter what the config would choose.
        let threads = if ctx.serial_only() {
            1
        } else {
            self.parallel.threads_for(source.estimated_rows())
        };
        exec::run_scheduled(
            &state.table,
            query,
            &source,
            strategy,
            threads,
            &self.parallel,
            &self.stats,
            ctx,
        )
    }

    fn execute_range(
        &self,
        query: &SelectQuery,
        ctx: &QueryCtx,
        start: usize,
        end: usize,
    ) -> Result<(ResultTable, u64), StorageError> {
        // A bounded delta range doesn't profit from bitmap algebra (the
        // index covers the whole table, not the tail); compile the
        // predicate as a residual filter like the scan engine does.
        let table = &self.state.table;
        debug_assert!(start <= end && end <= table.num_rows());
        let pred = if query.predicate.is_true() {
            None
        } else {
            Some(compile_pred(table, &query.predicate)?)
        };
        let source = RowSource::Range { start, end, pred };
        let groups = exec::group_space_over(table, query, Some((start, end)))?;
        let strategy = exec::choose_strategy(groups, self.dense_group_limit);
        let threads = if ctx.serial_only() {
            1
        } else {
            self.parallel.threads_for(source.estimated_rows())
        };
        exec::run_scheduled(
            table,
            query,
            &source,
            strategy,
            threads,
            &self.parallel,
            &self.stats,
            ctx,
        )
    }
}

impl Database for BitmapDb {
    fn name(&self) -> &'static str {
        "roaring-bitmap-db"
    }

    fn pin(&self) -> Arc<dyn EngineSnapshot> {
        Arc::new(BitmapSnapshot {
            state: self.state(),
            dense_group_limit: self.config.dense_group_limit,
            parallel: self.config.parallel,
            stats: Arc::clone(&self.stats),
        })
    }

    fn table(&self) -> Arc<Table> {
        self.state().table.clone()
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn result_cache(&self) -> Option<&ResultCache> {
        self.cache.as_deref()
    }

    fn append_rows(&self, rows: &[Vec<Value>]) -> Result<usize, StorageError> {
        self.mutate_table(
            |t| t.append_rows(rows),
            |p, t| p.log_append(t.version(), t.schema(), rows),
        )
    }

    fn append_table(&self, other: &Table) -> Result<usize, StorageError> {
        self.mutate_table(
            |t| t.append_table(other),
            |p, t| p.log_append_table(t.version(), other),
        )
    }

    fn request_overhead(&self) -> Duration {
        self.config.request_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{XSpec, YSpec};
    use crate::table::{Field, Schema, TableBuilder};
    use crate::value::{DataType, Value};

    fn db() -> BitmapDb {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("location", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        let rows = [
            (2014, "chair", "US", 10.0),
            (2014, "chair", "US", 5.0),
            (2015, "chair", "US", 20.0),
            (2014, "desk", "US", 7.0),
            (2015, "desk", "UK", 9.0),
            (2015, "chair", "UK", 11.0),
        ];
        for (y, p, l, s) in rows {
            b.push_row(vec![
                Value::Int(y),
                Value::str(p),
                Value::str(l),
                Value::Float(s),
            ])
            .unwrap();
        }
        // The fixture is 6 rows: disable cost-based admission so the
        // cache-behaviour tests below still exercise warm hits.
        BitmapDb::with_config(
            b.finish_shared(),
            BitmapDbConfig {
                cache: CacheConfig::admit_all(),
                ..Default::default()
            },
        )
    }

    #[test]
    fn builds_indexes_for_cat_and_small_int() {
        let db = db();
        assert!(db.is_indexed("product"));
        assert!(db.is_indexed("location"));
        assert!(db.is_indexed("year")); // card 2 ≤ 4096
        assert!(!db.is_indexed("sales")); // measure column unindexed
        assert!(db.index_bytes() > 0);
    }

    #[test]
    fn bitmap_selection_scans_only_matching_rows() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("location", "UK"));
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(
            delta.rows_scanned, 2,
            "only the two UK rows should be visited"
        );
        assert_eq!(rt.groups[0].ys[0], vec![20.0]);
    }

    #[test]
    fn conjunction_of_indexed_atoms() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(
            Predicate::cat_eq("product", "chair").and(Predicate::cat_eq("location", "US")),
        );
        let rt = db.execute(&q).unwrap();
        let g = &rt.groups[0];
        assert_eq!(g.xs, vec![Value::Int(2014), Value::Int(2015)]);
        assert_eq!(g.ys[0], vec![15.0, 20.0]);
    }

    #[test]
    fn int_equality_uses_index() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::num_eq("year", 2015.0));
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.rows_scanned, 3);
        assert_eq!(rt.groups[0].ys[0], vec![40.0]);
    }

    #[test]
    fn residual_predicate_on_measure_column() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(
            Predicate::cat_eq("product", "chair").and(Predicate::atom(Atom::NumCmp {
                col: "sales".into(),
                op: CmpOp::Gt,
                value: 9.0,
            })),
        );
        let rt = db.execute(&q).unwrap();
        let g = &rt.groups[0];
        // chair rows with sales > 9: (2014,10), (2015,20), (2015,11)
        assert_eq!(g.xs, vec![Value::Int(2014), Value::Int(2015)]);
        assert_eq!(g.ys[0], vec![10.0, 31.0]);
    }

    #[test]
    fn indexed_disjunction() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_predicate(
            Predicate::Or(vec![
                vec![Atom::CatEq {
                    col: "product".into(),
                    value: "desk".into(),
                }],
                vec![Atom::CatEq {
                    col: "location".into(),
                    value: "UK".into(),
                }],
            ]),
        );
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.rows_scanned, 3); // rows 3,4,5
        let g = &rt.groups[0];
        assert_eq!(g.ys[0], vec![7.0, 20.0]);
    }

    #[test]
    fn missing_dictionary_value_yields_empty() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("product", "sofa"));
        assert!(db.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn request_counting() {
        let db = db();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        db.run_request(&[q.clone(), q.clone(), q]).unwrap();
        let snap = db.stats().snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.queries, 3);
    }

    #[test]
    fn append_extends_indexes_incrementally() {
        let db = db();
        // New product ("sofa") and a new location code appear only in the
        // appended rows; the year range stays inside the existing index.
        db.append_rows(&[
            vec![
                Value::Int(2015),
                Value::str("sofa"),
                Value::str("FR"),
                Value::Float(4.0),
            ],
            vec![
                Value::Int(2014),
                Value::str("chair"),
                Value::str("UK"),
                Value::Float(6.0),
            ],
        ])
        .unwrap();
        assert!(db.is_indexed("product"));
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("product", "sofa"));
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.rows_scanned, 1, "new code must be index-resolved");
        assert_eq!(rt.groups[0].ys[0], vec![4.0]);
        // Existing codes see the appended rows too.
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("location", "UK"));
        let rt = db.execute(&q).unwrap();
        assert_eq!(rt.groups[0].ys[0], vec![6.0, 20.0]);
    }

    #[test]
    fn append_outside_int_range_rebuilds_that_index() {
        let db = db();
        assert!(db.is_indexed("year"));
        db.append_rows(&[vec![
            Value::Int(2020),
            Value::str("chair"),
            Value::str("US"),
            Value::Float(1.0),
        ]])
        .unwrap();
        assert!(db.is_indexed("year"), "widened range still fits the budget");
        let q = SelectQuery::new(XSpec::raw("product"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::num_eq("year", 2020.0));
        let before = db.stats().snapshot();
        let rt = db.execute(&q).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.rows_scanned, 1);
        assert_eq!(rt.groups[0].ys[0], vec![1.0]);

        // Blow past the cardinality budget: the index must be dropped and
        // the query answered by a residual scan, still correctly.
        db.append_rows(&[vec![
            Value::Int(2014 + 1_000_000),
            Value::str("desk"),
            Value::str("US"),
            Value::Float(2.0),
        ]])
        .unwrap();
        assert!(!db.is_indexed("year"));
        let rt = db.execute(&q).unwrap();
        assert_eq!(rt.groups[0].ys[0], vec![1.0]);
    }

    #[test]
    fn extreme_int_append_does_not_overflow_the_range_check() {
        // Regression: `value - int_min` used to overflow i64 when an
        // appended sentinel sat near i64::MAX with a negative int_min,
        // panicking inside the mutation path. It must instead be treated
        // as out-of-range (index dropped, residual scan stays correct).
        let db = db();
        // Widen the year index to a *negative* int_min first…
        db.append_rows(&[vec![
            Value::Int(-10),
            Value::str("chair"),
            Value::str("US"),
            Value::Float(0.25),
        ]])
        .unwrap();
        assert!(db.is_indexed("year"), "negative-min range still fits");
        // …then append the overflow-triggering sentinel.
        db.append_rows(&[vec![
            Value::Int(i64::MAX),
            Value::str("chair"),
            Value::str("US"),
            Value::Float(1.5),
        ]])
        .unwrap();
        assert!(!db.is_indexed("year"));
        let q = SelectQuery::new(XSpec::raw("product"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::num_eq("year", 2015.0));
        let rt = db.execute(&q).unwrap();
        assert_eq!(rt.groups[0].ys[0], vec![31.0, 9.0]);
        // A follow-up append still works (engine not poisoned).
        db.append_rows(&[vec![
            Value::Int(2015),
            Value::str("desk"),
            Value::str("US"),
            Value::Float(2.0),
        ]])
        .unwrap();
        let rt = db.execute(&q).unwrap();
        assert_eq!(rt.groups[0].ys[0], vec![31.0, 11.0]);
    }

    #[test]
    fn empty_append_is_a_version_preserving_noop() {
        let db = db();
        let v0 = db.table().version();
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        let _ = db.run_request(std::slice::from_ref(&q)).unwrap();
        assert_eq!(db.append_rows(&[]).unwrap(), 0);
        assert_eq!(db.table().version(), v0);
        let before = db.stats().snapshot();
        let _ = db.run_request(std::slice::from_ref(&q)).unwrap();
        let delta = db.stats().snapshot().since(&before);
        assert_eq!(delta.cache_hits, 1, "cache must survive a no-op append");
    }
}
