//! Deterministic fault injection and lock-poison recovery.
//!
//! An always-on interactive engine (ROADMAP north star: millions of
//! concurrent zenvisage sessions) cannot afford for a single panicking
//! worker or a poisoned lock to take the process down or corrupt shared
//! bookkeeping. This module supplies the two halves of that guarantee:
//!
//! 1. **Injection** — a seeded, purely functional fault source
//!    ([`FaultSpec`]) that the execution stack consults at well-defined
//!    points ([`FaultPoint`]): chunk-scan panics, cache-insert failures,
//!    worker-spawn failures, and per-morsel delays. Whether a given
//!    (point, index, epoch) triple fires is a pure hash of the seed — no
//!    clocks, no global RNG state — so a chaos test can *predict* exactly
//!    which morsels will fail and assert exact bookkeeping. With
//!    `seed == 0` (the default) every check is a single branch on a
//!    `Copy` struct: injection compiles down to a no-op on the hot path.
//!
//! 2. **Recovery** — [`lock_recover`] / [`read_recover`] /
//!    [`write_recover`] convert a poisoned `Mutex`/`RwLock` back into a
//!    usable guard (clearing the poison flag) instead of unwrapping. They
//!    are correct only where every critical section leaves the protected
//!    value consistent at every panic point (e.g. replacing an `Arc`);
//!    state that can be torn mid-mutation (the cache's intrusive LRU
//!    slab) must rebuild instead — see `ResultCache::lock_lru`.
//!
//! Injection is enabled per engine via `ParallelConfig::fault`, or
//! process-wide through the environment (read once per
//! `ParallelConfig::from_env`):
//!
//! * `ZV_FAULT_SEED` — non-zero integer seed; `0`/unset disables.
//! * `ZV_FAULT_RATE` — fraction of indices that fire, `0.0..=1.0`
//!   (default `0`).
//! * `ZV_FAULT_DELAY_US` — microseconds injected per firing
//!   [`FaultPoint::MorselDelay`] (default `0`).
//!
//! The *epoch* argument to [`FaultSpec::fires`] comes from
//! `QueryCtx::fault_epoch` and is advanced by the retry machinery in
//! `zv-server`, so a retried query re-rolls every fault decision — a
//! deterministic stand-in for "the transient condition may have passed".

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Marker embedded in every injected panic payload; the quiet panic hook
/// ([`silence_injected_panics`]) and assertions key on it.
pub const PANIC_MARKER: &str = "[zv-fault]";

/// An injection point in the execution stack. Each point hashes with a
/// distinct salt so firing decisions are independent across points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// Panic inside a parallel worker just before it scans a morsel
    /// (morsel scheduling: index = morsel index; static scheduling:
    /// index = shard index).
    ChunkScanPanic,
    /// Fail a result-cache insert (index = per-cache insert sequence
    /// number). The query still succeeds; the result just isn't cached.
    CacheInsert,
    /// Fail parallel fan-out before any worker starts (index = morsel /
    /// shard count). Surfaces as `StorageError::ResourceExhausted`.
    WorkerSpawn,
    /// Sleep `delay_us` before scanning a morsel — stretches scans to
    /// exercise cancellation latency and queue backpressure.
    MorselDelay,
    /// Sever a network connection mid-response (index = the
    /// connection's response sequence number): `zv-server`'s wire
    /// writer emits a truncated frame and shuts the socket down, so
    /// chaos tests can replay exactly which response dies and assert
    /// the server cancels the session's remaining work
    /// (`CancelReason::ConnectionLost`) without leaking a pool slot or
    /// touching the result cache.
    ConnDrop,
    /// Fail a snapshot-file write short (index = the persistence
    /// layer's disk-write sequence number): only a prefix of the bytes
    /// reaches the temp file before the write errors, modeling ENOSPC
    /// or a dying disk. Recovery ignores the damaged temp file — the
    /// previous snapshot (plus the WAL) stays authoritative.
    DiskWriteFail,
    /// Fail an `fsync` (index = the persistence layer's fsync sequence
    /// number). A WAL append whose fsync fails is rolled back (the
    /// frame is truncated away) and reported failed — disk and memory
    /// agree the batch never committed; a snapshot fsync failure
    /// aborts the checkpoint before the rename.
    FsyncFail,
    /// Crash between writing a complete, fsynced snapshot temp file
    /// and renaming it into place (index = the persistence layer's
    /// checkpoint sequence number). The `.tmp` file is left behind;
    /// recovery must ignore it and serve the previous snapshot plus
    /// the full WAL.
    CrashBeforeRename,
    /// Tear the tail of a WAL append at an arbitrary byte (index = the
    /// persistence layer's WAL append sequence number; the torn offset
    /// is [`crate::persist::wal_tear_offset`]). The torn bytes stay on
    /// disk and the log is poisoned fail-stop — recovery truncates the
    /// tail at the last CRC-valid frame boundary.
    WalTearTail,
    /// Abandon a result-cache derivation mid-plan (index = the cache's
    /// derivation attempt sequence number): `lookup_derived` returns
    /// `None` as if no superset candidate existed, so the query falls
    /// back to a real scan and the cache is left bit-untouched.
    CacheDerive,
    /// A client that trickles half a frame and then stalls (index =
    /// the chaos driver's connection index). Consulted by test load
    /// drivers — not the server — to decide deterministically which
    /// connections misbehave; the server side under test is the
    /// reader deadline (`NetServerConfig::read_deadline`).
    ReadStall,
    /// Abandon an incremental-view-maintenance delta merge mid-flight
    /// (index = the cache's IVM merge attempt sequence number): the
    /// merged result is discarded before anything is published, the
    /// cache is left bit-untouched, and the query silently falls back
    /// to a full recompute — correct, just slower.
    IvmMerge,
}

impl FaultPoint {
    fn salt(self) -> u64 {
        match self {
            FaultPoint::ChunkScanPanic => 0x5ca7_da7a_0001,
            FaultPoint::CacheInsert => 0x5ca7_da7a_0002,
            FaultPoint::WorkerSpawn => 0x5ca7_da7a_0003,
            FaultPoint::MorselDelay => 0x5ca7_da7a_0004,
            FaultPoint::ConnDrop => 0x5ca7_da7a_0005,
            FaultPoint::DiskWriteFail => 0x5ca7_da7a_0006,
            FaultPoint::FsyncFail => 0x5ca7_da7a_0007,
            FaultPoint::CrashBeforeRename => 0x5ca7_da7a_0008,
            FaultPoint::WalTearTail => 0x5ca7_da7a_0009,
            FaultPoint::CacheDerive => 0x5ca7_da7a_000a,
            FaultPoint::ReadStall => 0x5ca7_da7a_000b,
            FaultPoint::IvmMerge => 0x5ca7_da7a_000c,
        }
    }
}

/// Seeded fault-injection configuration. `Copy`, cheap to pass by value;
/// the all-zero default ([`FaultSpec::disabled`]) never fires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Non-zero arms injection; `0` disables it entirely (every
    /// [`FaultSpec::fires`] call short-circuits before hashing).
    pub seed: u64,
    /// Firing probability in parts-per-million (`1_000_000` = every
    /// index fires). A seed may be armed with rate `0` to measure the
    /// overhead of the hooks themselves (`fault_overhead_ratio` in
    /// `bench_groupby`).
    pub rate_ppm: u32,
    /// Microseconds slept when [`FaultPoint::MorselDelay`] fires.
    pub delay_us: u32,
}

impl FaultSpec {
    /// The never-firing default.
    pub const fn disabled() -> FaultSpec {
        FaultSpec {
            seed: 0,
            rate_ppm: 0,
            delay_us: 0,
        }
    }

    /// Spec firing a `rate` fraction of indices (clamped to `0.0..=1.0`)
    /// under `seed`.
    pub fn with_rate(seed: u64, rate: f64) -> FaultSpec {
        FaultSpec {
            seed,
            rate_ppm: rate_to_ppm(rate),
            delay_us: 0,
        }
    }

    /// True when injection is armed (hooks evaluate their hash).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.seed != 0
    }

    /// Read `ZV_FAULT_SEED` / `ZV_FAULT_RATE` / `ZV_FAULT_DELAY_US`.
    /// Unset or empty variables mean "disabled"; present-but-invalid
    /// values panic loudly (same convention as the `ZV_SCHED_*` knobs —
    /// a silently ignored typo in CI would fake chaos coverage).
    pub fn from_env() -> FaultSpec {
        FaultSpec::from_env_spec(
            std::env::var("ZV_FAULT_SEED").ok().as_deref(),
            std::env::var("ZV_FAULT_RATE").ok().as_deref(),
            std::env::var("ZV_FAULT_DELAY_US").ok().as_deref(),
        )
    }

    /// Testable core of [`FaultSpec::from_env`].
    pub fn from_env_spec(
        seed: Option<&str>,
        rate: Option<&str>,
        delay_us: Option<&str>,
    ) -> FaultSpec {
        let seed = match non_empty(seed) {
            None => 0,
            Some(s) => s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("ZV_FAULT_SEED must be an integer, got {s:?}")),
        };
        let rate_ppm = match non_empty(rate) {
            None => 0,
            Some(s) => {
                let r = s
                    .parse::<f64>()
                    .unwrap_or_else(|_| panic!("ZV_FAULT_RATE must be a number, got {s:?}"));
                assert!(
                    (0.0..=1.0).contains(&r),
                    "ZV_FAULT_RATE must be in 0.0..=1.0, got {s:?}"
                );
                rate_to_ppm(r)
            }
        };
        let delay_us = match non_empty(delay_us) {
            None => 0,
            Some(s) => s
                .parse::<u32>()
                .unwrap_or_else(|_| panic!("ZV_FAULT_DELAY_US must be an integer, got {s:?}")),
        };
        FaultSpec {
            seed,
            rate_ppm,
            delay_us,
        }
    }

    /// Does `point` fire for `index` in retry-`epoch`? Pure: the same
    /// `(spec, point, index, epoch)` always answers the same, so tests
    /// replay the exact decision sequence the engine saw. Disabled specs
    /// answer in one branch.
    #[inline]
    pub fn fires(&self, point: FaultPoint, index: u64, epoch: u64) -> bool {
        if self.seed == 0 || self.rate_ppm == 0 {
            return false;
        }
        let h = mix64(
            self.seed
                ^ point.salt().wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ index.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ epoch.wrapping_mul(0x1656_67B1_9E37_79F9),
        );
        h % 1_000_000 < u64::from(self.rate_ppm)
    }

    /// Sleep the configured injected delay (no-op at `delay_us == 0`).
    pub fn delay(&self) {
        if self.delay_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(u64::from(self.delay_us)));
        }
    }
}

fn rate_to_ppm(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * 1_000_000.0).round() as u32
}

fn non_empty(v: Option<&str>) -> Option<&str> {
    v.map(str::trim).filter(|s| !s.is_empty())
}

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Raise the injected worker panic for `index` (marked payload so the
/// quiet hook and `WorkerPanicked` assertions can recognize it).
#[cold]
pub fn injected_panic(index: u64) -> ! {
    panic!("{PANIC_MARKER} injected chunk-scan panic at morsel {index}");
}

/// Render a `catch_unwind` payload as a string for
/// `StorageError::WorkerPanicked` (`&str` and `String` payloads pass
/// through; anything else gets a placeholder).
pub fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Install (once, process-wide) a panic hook that swallows the default
/// stderr backtrace for *injected* panics — payloads containing
/// [`PANIC_MARKER`] — while delegating everything else to the previous
/// hook. Chaos tests and benches call this so thousands of expected
/// panics don't drown real failures in noise.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(PANIC_MARKER))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(PANIC_MARKER))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Lock a `Mutex`, recovering from poison. Use only where every critical
/// section leaves the value consistent at every panic point.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Read-lock an `RwLock`, recovering from poison (see [`lock_recover`]).
pub fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => {
            l.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Write-lock an `RwLock`, recovering from poison (see [`lock_recover`]).
pub fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => {
            l.clear_poison();
            poisoned.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spec_never_fires() {
        let spec = FaultSpec::disabled();
        assert!(!spec.is_enabled());
        for i in 0..1000 {
            assert!(!spec.fires(FaultPoint::ChunkScanPanic, i, 0));
        }
        // Armed seed but zero rate: hooks evaluate, nothing fires.
        let armed = FaultSpec {
            seed: 1,
            rate_ppm: 0,
            delay_us: 0,
        };
        assert!(armed.is_enabled());
        for i in 0..1000 {
            assert!(!armed.fires(FaultPoint::CacheInsert, i, 0));
        }
    }

    #[test]
    fn firing_is_deterministic_and_point_independent() {
        let spec = FaultSpec::with_rate(0xDEAD_BEEF, 0.25);
        let a: Vec<bool> = (0..256)
            .map(|i| spec.fires(FaultPoint::ChunkScanPanic, i, 3))
            .collect();
        let b: Vec<bool> = (0..256)
            .map(|i| spec.fires(FaultPoint::ChunkScanPanic, i, 3))
            .collect();
        assert_eq!(a, b, "same inputs, same decisions");
        let c: Vec<bool> = (0..256)
            .map(|i| spec.fires(FaultPoint::CacheInsert, i, 3))
            .collect();
        assert_ne!(a, c, "distinct salts decorrelate points");
    }

    #[test]
    fn epoch_rerolls_decisions() {
        let spec = FaultSpec::with_rate(42, 0.5);
        let by_epoch: Vec<Vec<bool>> = (0..4)
            .map(|e| {
                (0..128)
                    .map(|i| spec.fires(FaultPoint::ChunkScanPanic, i, e))
                    .collect()
            })
            .collect();
        assert!(
            by_epoch.windows(2).any(|w| w[0] != w[1]),
            "retry epochs must re-roll fault decisions"
        );
    }

    #[test]
    fn rate_is_roughly_respected() {
        let spec = FaultSpec::with_rate(7, 0.1);
        let fired = (0..10_000)
            .filter(|&i| spec.fires(FaultPoint::ChunkScanPanic, i, 0))
            .count();
        assert!(
            (700..1300).contains(&fired),
            "~10% of 10k indices should fire, got {fired}"
        );
        let every = FaultSpec::with_rate(7, 1.0);
        assert!((0..100).all(|i| every.fires(FaultPoint::MorselDelay, i, 0)));
    }

    #[test]
    fn env_parsing() {
        assert_eq!(
            FaultSpec::from_env_spec(None, None, None),
            FaultSpec::disabled()
        );
        assert_eq!(
            FaultSpec::from_env_spec(Some(""), Some(" "), None),
            FaultSpec::disabled()
        );
        let spec = FaultSpec::from_env_spec(Some("99"), Some("0.125"), Some("250"));
        assert_eq!(
            spec,
            FaultSpec {
                seed: 99,
                rate_ppm: 125_000,
                delay_us: 250,
            }
        );
    }

    #[test]
    #[should_panic(expected = "ZV_FAULT_RATE")]
    fn env_rate_out_of_range_panics() {
        let _ = FaultSpec::from_env_spec(Some("1"), Some("1.5"), None);
    }

    #[test]
    #[should_panic(expected = "ZV_FAULT_SEED")]
    fn env_seed_garbage_panics() {
        let _ = FaultSpec::from_env_spec(Some("not-a-number"), None, None);
    }

    #[test]
    fn payload_string_roundtrip() {
        silence_injected_panics();
        let err = std::panic::catch_unwind(|| injected_panic(17)).unwrap_err();
        let s = panic_payload_string(err.as_ref());
        assert!(s.contains(PANIC_MARKER), "payload: {s}");
        assert!(s.contains("morsel 17"), "payload: {s}");
    }

    #[test]
    fn poisoned_locks_recover() {
        use std::sync::{Mutex, RwLock};
        let m = Mutex::new(5u32);
        let l = RwLock::new(7u32);
        silence_injected_panics();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("{PANIC_MARKER} deliberate poison");
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = l.write().unwrap();
            panic!("{PANIC_MARKER} deliberate poison");
        }));
        assert!(m.is_poisoned() && l.is_poisoned());
        assert_eq!(*lock_recover(&m), 5);
        assert_eq!(*read_recover(&l), 7);
        *write_recover(&l) = 8;
        assert_eq!(*read_recover(&l), 8);
        assert!(!m.is_poisoned() && !l.is_poisoned());
        // And plain locking works again afterwards.
        assert_eq!(*m.lock().unwrap(), 5);
    }
}
