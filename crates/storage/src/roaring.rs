//! A from-scratch implementation of Roaring bitmaps (Chambi et al., 2015),
//! the principal data-storage format of the zenvisage in-memory database
//! (thesis §6.2, "Roaring Bitmap Database").
//!
//! A roaring bitmap partitions the `u32` universe into 2^16 chunks keyed by
//! the high 16 bits of each value. Each non-empty chunk stores the low 16
//! bits in one of three container kinds:
//!
//! * **Array** — a sorted `Vec<u16>`, used while cardinality ≤ 4096;
//! * **Bitmap** — a fixed 1024×`u64` bitset, used above 4096;
//! * **Run** — sorted `(start, length-1)` run pairs, produced by
//!   [`RoaringBitmap::run_optimize`] when runs compress better.
//!
//! Binary set operations are specialized for Array/Bitmap pairs; Run
//! containers are expanded to their Array/Bitmap equivalent first (a
//! simplification relative to the C implementation that preserves
//! semantics — run containers here are a storage optimization only).

const ARRAY_MAX: usize = 4096;
const BITMAP_WORDS: usize = 1024;

/// One 2^16-value chunk of the bitmap.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Container {
    /// Sorted, deduplicated low-16-bit values.
    Array(Vec<u16>),
    /// 65536-bit bitset.
    Bitmap(Box<[u64; BITMAP_WORDS]>),
    /// Sorted, non-overlapping, non-adjacent runs `(start, len_minus_one)`.
    Run(Vec<(u16, u16)>),
}

impl Container {
    fn new() -> Self {
        Container::Array(Vec::new())
    }

    fn cardinality(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap(b) => b.iter().map(|w| w.count_ones() as usize).sum(),
            Container::Run(runs) => runs.iter().map(|&(_, l)| l as usize + 1).sum(),
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Bitmap(b) => b[(low >> 6) as usize] & (1u64 << (low & 63)) != 0,
            Container::Run(runs) => match runs.binary_search_by_key(&low, |&(s, _)| s) {
                Ok(_) => true,
                Err(0) => false,
                Err(i) => {
                    let (s, l) = runs[i - 1];
                    low - s <= l
                }
            },
        }
    }

    /// Insert; returns true if newly added. May upgrade Array → Bitmap.
    fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    if v.len() >= ARRAY_MAX {
                        let mut bm = Self::array_to_bitmap(v);
                        Self::bitmap_set(&mut bm, low);
                        *self = Container::Bitmap(bm);
                    } else {
                        v.insert(pos, low);
                    }
                    true
                }
            },
            Container::Bitmap(b) => {
                let w = &mut b[(low >> 6) as usize];
                let mask = 1u64 << (low & 63);
                let added = *w & mask == 0;
                *w |= mask;
                added
            }
            Container::Run(_) => {
                self.devolve();
                self.insert(low)
            }
        }
    }

    /// Remove; returns true if present. May downgrade Bitmap → Array.
    fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap(b) => {
                let w = &mut b[(low >> 6) as usize];
                let mask = 1u64 << (low & 63);
                let present = *w & mask != 0;
                *w &= !mask;
                if present && self.cardinality() <= ARRAY_MAX {
                    *self = Container::Array(self.to_array_vec());
                }
                present
            }
            Container::Run(_) => {
                self.devolve();
                self.remove(low)
            }
        }
    }

    fn array_to_bitmap(v: &[u16]) -> Box<[u64; BITMAP_WORDS]> {
        let mut b: Box<[u64; BITMAP_WORDS]> = Box::new([0u64; BITMAP_WORDS]);
        for &low in v {
            Self::bitmap_set(&mut b, low);
        }
        b
    }

    #[inline]
    fn bitmap_set(b: &mut [u64; BITMAP_WORDS], low: u16) {
        b[(low >> 6) as usize] |= 1u64 << (low & 63);
    }

    fn to_array_vec(&self) -> Vec<u16> {
        match self {
            Container::Array(v) => v.clone(),
            Container::Bitmap(b) => {
                let mut out = Vec::with_capacity(self.cardinality());
                for (wi, &w) in b.iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        let t = bits.trailing_zeros();
                        out.push(((wi as u32) << 6 | t) as u16);
                        bits &= bits - 1;
                    }
                }
                out
            }
            Container::Run(runs) => {
                let mut out = Vec::with_capacity(self.cardinality());
                for &(s, l) in runs {
                    for v in s..=s.saturating_add(l) {
                        out.push(v);
                    }
                }
                out
            }
        }
    }

    /// Replace a Run container by its Array/Bitmap equivalent.
    fn devolve(&mut self) {
        if let Container::Run(_) = self {
            let card = self.cardinality();
            if card > ARRAY_MAX {
                let mut b: Box<[u64; BITMAP_WORDS]> = Box::new([0u64; BITMAP_WORDS]);
                if let Container::Run(runs) = self {
                    for &(s, l) in runs.iter() {
                        // Set bits s..=s+l word-by-word.
                        let end = s as u32 + l as u32;
                        let mut cur = s as u32;
                        while cur <= end {
                            let wi = (cur >> 6) as usize;
                            let start_bit = cur & 63;
                            let span = (end - cur).min(63 - start_bit);
                            let mask = if span == 63 && start_bit == 0 {
                                u64::MAX
                            } else {
                                ((1u64 << (span + 1)) - 1) << start_bit
                            };
                            b[wi] |= mask;
                            cur += span + 1;
                        }
                    }
                }
                *self = Container::Bitmap(b);
            } else {
                *self = Container::Array(self.to_array_vec());
            }
        }
    }

    /// Normalized (non-Run) copy for binary ops.
    fn norm(&self) -> Container {
        let mut c = self.clone();
        c.devolve();
        c
    }

    fn and(&self, other: &Container) -> Container {
        use Container::*;
        match (self.norm(), other.norm()) {
            (Array(a), Array(b)) => Array(intersect_sorted(&a, &b)),
            (Array(a), Bitmap(b)) | (Bitmap(b), Array(a)) => Array(
                a.iter()
                    .copied()
                    .filter(|&v| b[(v >> 6) as usize] & (1 << (v & 63)) != 0)
                    .collect(),
            ),
            (Bitmap(a), Bitmap(b)) => {
                let mut out: Box<[u64; BITMAP_WORDS]> = Box::new([0u64; BITMAP_WORDS]);
                let mut card = 0usize;
                for i in 0..BITMAP_WORDS {
                    out[i] = a[i] & b[i];
                    card += out[i].count_ones() as usize;
                }
                let c = Bitmap(out);
                if card <= ARRAY_MAX {
                    Array(c.to_array_vec())
                } else {
                    c
                }
            }
            _ => unreachable!("norm() removes Run containers"),
        }
    }

    fn or(&self, other: &Container) -> Container {
        use Container::*;
        match (self.norm(), other.norm()) {
            (Array(a), Array(b)) => {
                let merged = union_sorted(&a, &b);
                if merged.len() > ARRAY_MAX {
                    Bitmap(Self::array_to_bitmap(&merged))
                } else {
                    Array(merged)
                }
            }
            (Array(a), Bitmap(b)) | (Bitmap(b), Array(a)) => {
                let mut out = b.clone();
                for &v in &a {
                    Self::bitmap_set(&mut out, v);
                }
                Bitmap(out)
            }
            (Bitmap(a), Bitmap(b)) => {
                let mut out: Box<[u64; BITMAP_WORDS]> = Box::new([0u64; BITMAP_WORDS]);
                for i in 0..BITMAP_WORDS {
                    out[i] = a[i] | b[i];
                }
                Bitmap(out)
            }
            _ => unreachable!(),
        }
    }

    fn and_not(&self, other: &Container) -> Container {
        use Container::*;
        match (self.norm(), other.norm()) {
            (Array(a), Array(b)) => Array(difference_sorted(&a, &b)),
            (Array(a), Bitmap(b)) => Array(
                a.iter()
                    .copied()
                    .filter(|&v| b[(v >> 6) as usize] & (1 << (v & 63)) == 0)
                    .collect(),
            ),
            (Bitmap(a), Array(b)) => {
                let mut out = a.clone();
                for &v in &b {
                    out[(v >> 6) as usize] &= !(1u64 << (v & 63));
                }
                let c = Bitmap(out);
                if c.cardinality() <= ARRAY_MAX {
                    Array(c.to_array_vec())
                } else {
                    c
                }
            }
            (Bitmap(a), Bitmap(b)) => {
                let mut out: Box<[u64; BITMAP_WORDS]> = Box::new([0u64; BITMAP_WORDS]);
                let mut card = 0usize;
                for i in 0..BITMAP_WORDS {
                    out[i] = a[i] & !b[i];
                    card += out[i].count_ones() as usize;
                }
                let c = Bitmap(out);
                if card <= ARRAY_MAX {
                    Array(c.to_array_vec())
                } else {
                    c
                }
            }
            _ => unreachable!(),
        }
    }

    /// Convert to a Run container if that representation is smaller.
    fn run_optimize(&mut self) {
        let vals = self.to_array_vec();
        if vals.is_empty() {
            return;
        }
        let mut runs: Vec<(u16, u16)> = Vec::new();
        let mut start = vals[0];
        let mut prev = vals[0];
        for &v in &vals[1..] {
            if v == prev + 1 {
                prev = v;
            } else {
                runs.push((start, prev - start));
                start = v;
                prev = v;
            }
        }
        runs.push((start, prev - start));
        // Size heuristics mirror the paper: run = 4 bytes/run, array =
        // 2 bytes/value, bitmap = 8192 bytes.
        let run_bytes = runs.len() * 4;
        let current_bytes = match self {
            Container::Array(v) => v.len() * 2,
            Container::Bitmap(_) => 8192,
            Container::Run(r) => r.len() * 4,
        };
        if run_bytes < current_bytes {
            *self = Container::Run(runs);
        }
    }
}

fn intersect_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // Galloping pays off when sizes are very skewed; otherwise linear merge.
    if large.len() / (small.len().max(1)) >= 32 {
        let mut out = Vec::with_capacity(small.len());
        let mut lo = 0usize;
        for &v in small {
            match large[lo..].binary_search(&v) {
                Ok(p) => {
                    out.push(v);
                    lo += p + 1;
                }
                Err(p) => lo += p,
            }
            if lo >= large.len() {
                break;
            }
        }
        out
    } else {
        let mut out = Vec::with_capacity(small.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

fn union_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn difference_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// A compressed bitmap over `u32` row ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoaringBitmap {
    /// `(high 16 bits, container)` pairs sorted by key.
    containers: Vec<(u16, Container)>,
}

impl RoaringBitmap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an ascending iterator of unique values (fast append path).
    pub fn from_sorted_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut bm = Self::new();
        let mut last: Option<u32> = None;
        for v in iter {
            if let Some(prev) = last {
                assert!(
                    v > prev,
                    "from_sorted_iter requires strictly ascending input"
                );
            }
            bm.push_unchecked(v);
            last = Some(v);
        }
        bm
    }

    /// Append a value known to be ≥ everything present (O(1) amortized,
    /// the fast path for building row-id indexes in ascending row order).
    ///
    /// Debug builds assert monotonicity; release builds trust the caller.
    pub fn push_ascending(&mut self, value: u32) {
        debug_assert!(
            self.containers.is_empty() || self.max().unwrap() < value,
            "push_ascending requires strictly ascending input"
        );
        self.push_unchecked(value);
    }

    fn push_unchecked(&mut self, value: u32) {
        let hi = (value >> 16) as u16;
        let lo = value as u16;
        match self.containers.last_mut() {
            Some((key, c)) if *key == hi => {
                c.insert(lo);
            }
            _ => {
                let mut c = Container::new();
                c.insert(lo);
                self.containers.push((hi, c));
            }
        }
    }

    pub fn insert(&mut self, value: u32) -> bool {
        let hi = (value >> 16) as u16;
        let lo = value as u16;
        match self.containers.binary_search_by_key(&hi, |&(k, _)| k) {
            Ok(i) => self.containers[i].1.insert(lo),
            Err(i) => {
                let mut c = Container::new();
                c.insert(lo);
                self.containers.insert(i, (hi, c));
                true
            }
        }
    }

    pub fn remove(&mut self, value: u32) -> bool {
        let hi = (value >> 16) as u16;
        let lo = value as u16;
        match self.containers.binary_search_by_key(&hi, |&(k, _)| k) {
            Ok(i) => {
                let removed = self.containers[i].1.remove(lo);
                if removed && self.containers[i].1.cardinality() == 0 {
                    self.containers.remove(i);
                }
                removed
            }
            Err(_) => false,
        }
    }

    pub fn contains(&self, value: u32) -> bool {
        let hi = (value >> 16) as u16;
        match self.containers.binary_search_by_key(&hi, |&(k, _)| k) {
            Ok(i) => self.containers[i].1.contains(value as u16),
            Err(_) => false,
        }
    }

    pub fn len(&self) -> u64 {
        self.containers
            .iter()
            .map(|(_, c)| c.cardinality() as u64)
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    pub fn min(&self) -> Option<u32> {
        self.containers.first().map(|(k, c)| {
            let lo = c.to_array_vec()[0];
            (*k as u32) << 16 | lo as u32
        })
    }

    pub fn max(&self) -> Option<u32> {
        self.containers.last().map(|(k, c)| {
            let lo = *c.to_array_vec().last().unwrap();
            (*k as u32) << 16 | lo as u32
        })
    }

    /// Bitwise AND (set intersection).
    pub fn and(&self, other: &RoaringBitmap) -> RoaringBitmap {
        let mut out = RoaringBitmap::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.containers.len() && j < other.containers.len() {
            let (ka, ca) = &self.containers[i];
            let (kb, cb) = &other.containers[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let c = ca.and(cb);
                    if c.cardinality() > 0 {
                        out.containers.push((*ka, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Bitwise OR (set union).
    pub fn or(&self, other: &RoaringBitmap) -> RoaringBitmap {
        let mut out = RoaringBitmap::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.containers.len() && j < other.containers.len() {
            let (ka, ca) = &self.containers[i];
            let (kb, cb) = &other.containers[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => {
                    out.containers.push((*ka, ca.norm()));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.containers.push((*kb, cb.norm()));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.containers.push((*ka, ca.or(cb)));
                    i += 1;
                    j += 1;
                }
            }
        }
        for (k, c) in &self.containers[i..] {
            out.containers.push((*k, c.norm()));
        }
        for (k, c) in &other.containers[j..] {
            out.containers.push((*k, c.norm()));
        }
        out
    }

    /// Set difference `self \ other`.
    pub fn and_not(&self, other: &RoaringBitmap) -> RoaringBitmap {
        let mut out = RoaringBitmap::new();
        let mut j = 0usize;
        for (ka, ca) in &self.containers {
            while j < other.containers.len() && other.containers[j].0 < *ka {
                j += 1;
            }
            if j < other.containers.len() && other.containers[j].0 == *ka {
                let c = ca.and_not(&other.containers[j].1);
                if c.cardinality() > 0 {
                    out.containers.push((*ka, c));
                }
            } else {
                out.containers.push((*ka, ca.norm()));
            }
        }
        out
    }

    /// Convert eligible containers to run-length encoding.
    pub fn run_optimize(&mut self) {
        for (_, c) in &mut self.containers {
            c.run_optimize();
        }
    }

    /// Approximate heap footprint in bytes (for compression reporting).
    pub fn size_bytes(&self) -> usize {
        self.containers
            .iter()
            .map(|(_, c)| {
                2 + match c {
                    Container::Array(v) => v.len() * 2,
                    Container::Bitmap(_) => 8192,
                    Container::Run(r) => r.len() * 4,
                }
            })
            .sum()
    }

    /// Iterate set values in ascending order.
    pub fn iter(&self) -> RoaringIter<'_> {
        RoaringIter {
            bitmap: self,
            container: 0,
            buffer: Vec::new(),
            pos: 0,
        }
    }

    /// Collect into a `Vec<u32>` (ascending).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Visit each set value without allocating an intermediate vector.
    #[inline]
    pub fn for_each<F: FnMut(u32)>(&self, mut f: F) {
        for (key, c) in &self.containers {
            let base = (*key as u32) << 16;
            match c {
                Container::Array(v) => {
                    for &lo in v {
                        f(base | lo as u32);
                    }
                }
                Container::Bitmap(b) => {
                    for (wi, &w) in b.iter().enumerate() {
                        let mut bits = w;
                        while bits != 0 {
                            let t = bits.trailing_zeros();
                            f(base | (wi as u32) << 6 | t);
                            bits &= bits - 1;
                        }
                    }
                }
                Container::Run(runs) => {
                    for &(s, l) in runs {
                        for lo in s as u32..=s as u32 + l as u32 {
                            f(base | lo);
                        }
                    }
                }
            }
        }
    }
}

impl FromIterator<u32> for RoaringBitmap {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut bm = RoaringBitmap::new();
        for v in iter {
            bm.insert(v);
        }
        bm
    }
}

pub struct RoaringIter<'a> {
    bitmap: &'a RoaringBitmap,
    container: usize,
    buffer: Vec<u16>,
    pos: usize,
}

impl Iterator for RoaringIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.pos < self.buffer.len() {
                let (key, _) = self.bitmap.containers[self.container - 1];
                let v = (key as u32) << 16 | self.buffer[self.pos] as u32;
                self.pos += 1;
                return Some(v);
            }
            if self.container >= self.bitmap.containers.len() {
                return None;
            }
            self.buffer = self.bitmap.containers[self.container].1.to_array_vec();
            self.container += 1;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut bm = RoaringBitmap::new();
        assert!(bm.insert(5));
        assert!(!bm.insert(5));
        assert!(bm.contains(5));
        assert!(!bm.contains(6));
        assert!(bm.remove(5));
        assert!(!bm.remove(5));
        assert!(bm.is_empty());
    }

    #[test]
    fn crosses_container_boundaries() {
        let mut bm = RoaringBitmap::new();
        for v in [0u32, 65535, 65536, 131071, 131072, u32::MAX] {
            bm.insert(v);
        }
        assert_eq!(bm.len(), 6);
        assert_eq!(bm.to_vec(), vec![0, 65535, 65536, 131071, 131072, u32::MAX]);
        assert_eq!(bm.min(), Some(0));
        assert_eq!(bm.max(), Some(u32::MAX));
    }

    #[test]
    fn array_upgrades_to_bitmap_at_threshold() {
        let mut bm = RoaringBitmap::new();
        for v in 0..5000u32 {
            bm.insert(v * 2); // non-contiguous so run-optimize can't kick in
        }
        assert_eq!(bm.len(), 5000);
        assert!(matches!(bm.containers[0].1, Container::Bitmap(_)));
        for v in 0..5000u32 {
            assert!(bm.contains(v * 2));
            assert!(!bm.contains(v * 2 + 1));
        }
    }

    #[test]
    fn bitmap_downgrades_on_removal() {
        let mut bm = RoaringBitmap::new();
        for v in 0..5000u32 {
            bm.insert(v);
        }
        assert!(matches!(bm.containers[0].1, Container::Bitmap(_)));
        for v in 1000..5000u32 {
            bm.remove(v);
        }
        assert!(matches!(bm.containers[0].1, Container::Array(_)));
        assert_eq!(bm.len(), 1000);
    }

    #[test]
    fn and_or_andnot_small() {
        let a: RoaringBitmap = [1u32, 2, 3, 100000].into_iter().collect();
        let b: RoaringBitmap = [2u32, 3, 4, 200000].into_iter().collect();
        assert_eq!(a.and(&b).to_vec(), vec![2, 3]);
        assert_eq!(a.or(&b).to_vec(), vec![1, 2, 3, 4, 100000, 200000]);
        assert_eq!(a.and_not(&b).to_vec(), vec![1, 100000]);
        assert_eq!(b.and_not(&a).to_vec(), vec![4, 200000]);
    }

    #[test]
    fn ops_across_mixed_container_kinds() {
        // a: dense (bitmap container), b: sparse (array container)
        let a: RoaringBitmap = (0..10000u32).collect();
        let b: RoaringBitmap = (0..10000u32).step_by(100).collect();
        assert_eq!(a.and(&b).len(), 100);
        assert_eq!(a.or(&b).len(), 10000);
        assert_eq!(a.and_not(&b).len(), 9900);
        assert_eq!(b.and_not(&a).len(), 0);
    }

    #[test]
    fn run_optimize_preserves_semantics_and_shrinks() {
        let mut bm: RoaringBitmap = (1000..3000u32).collect();
        let before = bm.size_bytes();
        bm.run_optimize();
        let after = bm.size_bytes();
        assert!(
            after < before,
            "run encoding should shrink contiguous data: {after} !< {before}"
        );
        assert!(matches!(bm.containers[0].1, Container::Run(_)));
        assert_eq!(bm.len(), 2000);
        assert!(bm.contains(1000));
        assert!(bm.contains(2999));
        assert!(!bm.contains(3000));
        // Ops on run containers still work (via devolve).
        let other: RoaringBitmap = (2500..3500u32).collect();
        assert_eq!(bm.and(&other).len(), 500);
        assert_eq!(bm.or(&other).len(), 2500);
        // Mutation devolves the run container.
        bm.insert(5000);
        assert!(bm.contains(5000));
        assert_eq!(bm.len(), 2001);
    }

    #[test]
    fn run_container_spanning_word_boundaries_devolves_to_bitmap() {
        let mut bm: RoaringBitmap = (0..6000u32).collect();
        bm.run_optimize();
        assert!(matches!(bm.containers[0].1, Container::Run(_)));
        // Force devolution through a set op; 6000 > ARRAY_MAX → bitmap path.
        let all: RoaringBitmap = (0..6000u32).collect();
        assert_eq!(bm.and(&all).to_vec(), (0..6000u32).collect::<Vec<_>>());
    }

    #[test]
    fn from_sorted_iter_matches_inserts() {
        let vals: Vec<u32> = (0..100000u32).step_by(7).collect();
        let a = RoaringBitmap::from_sorted_iter(vals.iter().copied());
        let b: RoaringBitmap = vals.iter().copied().collect();
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vals);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_iter_rejects_unsorted() {
        RoaringBitmap::from_sorted_iter([3u32, 2]);
    }

    #[test]
    fn for_each_matches_iter() {
        let bm: RoaringBitmap = (0..70000u32).step_by(3).collect();
        let mut collected = Vec::new();
        bm.for_each(|v| collected.push(v));
        assert_eq!(collected, bm.to_vec());
    }

    fn model_check(values: &[u32], other: &[u32]) {
        let a: RoaringBitmap = values.iter().copied().collect();
        let b: RoaringBitmap = other.iter().copied().collect();
        let sa: BTreeSet<u32> = values.iter().copied().collect();
        let sb: BTreeSet<u32> = other.iter().copied().collect();
        assert_eq!(a.to_vec(), sa.iter().copied().collect::<Vec<_>>());
        assert_eq!(
            a.and(&b).to_vec(),
            sa.intersection(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.or(&b).to_vec(),
            sa.union(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.and_not(&b).to_vec(),
            sa.difference(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(a.len(), sa.len() as u64);
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_btreeset_model(
            values in proptest::collection::vec(0u32..200_000, 0..500),
            other in proptest::collection::vec(0u32..200_000, 0..500),
        ) {
            model_check(&values, &other);
        }

        #[test]
        fn prop_insert_remove_model(ops in proptest::collection::vec((0u32..100_000, proptest::bool::ANY), 0..300)) {
            let mut bm = RoaringBitmap::new();
            let mut model = BTreeSet::new();
            for (v, is_insert) in ops {
                if is_insert {
                    proptest::prop_assert_eq!(bm.insert(v), model.insert(v));
                } else {
                    proptest::prop_assert_eq!(bm.remove(v), model.remove(&v));
                }
            }
            proptest::prop_assert_eq!(bm.to_vec(), model.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn prop_run_optimize_is_semantically_invisible(
            values in proptest::collection::vec(0u32..50_000, 0..1000),
        ) {
            let mut bm: RoaringBitmap = values.iter().copied().collect();
            let before = bm.to_vec();
            bm.run_optimize();
            proptest::prop_assert_eq!(bm.to_vec(), before);
        }
    }
}
