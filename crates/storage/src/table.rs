//! Relations: schema + columns, with a builder and CSV import/export used
//! by the examples.

use crate::column::Column;
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One attribute of a relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// Column names and types of a [`Table`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        let by_name = fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        Schema { fields, by_name }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }
}

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    UnknownColumn(String),
    TypeMismatch(String),
    Malformed(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StorageError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            StorageError::Malformed(m) => write!(f, "malformed input: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// An immutable in-memory relation.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Assemble a table from pre-built columns (the fast generator path).
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Table, StorageError> {
        if schema.len() != columns.len() {
            return Err(StorageError::Malformed(format!(
                "{} fields but {} columns",
                schema.len(),
                columns.len()
            )));
        }
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.dtype != c.dtype() {
                return Err(StorageError::TypeMismatch(format!(
                    "column {} declared {} but built {}",
                    f.name,
                    f.dtype,
                    c.dtype()
                )));
            }
        }
        let rows = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(StorageError::Malformed(
                "columns have differing lengths".into(),
            ));
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn column(&self, name: &str) -> Result<&Column, StorageError> {
        self.schema
            .index_of(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// All attribute names usable as an axis (the `*` attribute set).
    pub fn attribute_names(&self) -> Vec<String> {
        self.schema.names().map(str::to_string).collect()
    }

    /// Names of categorical attributes (candidate Z axes).
    pub fn categorical_names(&self) -> Vec<String> {
        self.schema
            .fields()
            .iter()
            .filter(|f| f.dtype == DataType::Cat)
            .map(|f| f.name.clone())
            .collect()
    }

    /// Names of numeric attributes (candidate Y measures).
    pub fn numeric_names(&self) -> Vec<String> {
        self.schema
            .fields()
            .iter()
            .filter(|f| f.dtype != DataType::Cat)
            .map(|f| f.name.clone())
            .collect()
    }

    /// Serialize to CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.schema.names().collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in 0..self.rows {
            let row: Vec<String> = self.columns.iter().map(|c| c.get(r).to_string()).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Parse a CSV string; column types are inferred from the first data
    /// row (int, then float, then categorical).
    pub fn from_csv(csv: &str) -> Result<Table, StorageError> {
        let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| StorageError::Malformed("empty csv".into()))?;
        let names: Vec<&str> = header.split(',').map(str::trim).collect();
        let rows: Vec<Vec<&str>> = lines
            .map(|l| l.split(',').map(str::trim).collect())
            .collect();
        if rows.is_empty() {
            return Err(StorageError::Malformed("csv has no data rows".into()));
        }
        let mut fields = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            // Infer the narrowest type every data row satisfies.
            let mut dtype = DataType::Int;
            for row in &rows {
                let cell = *row
                    .get(i)
                    .ok_or_else(|| StorageError::Malformed(format!("row missing column {name}")))?;
                if dtype == DataType::Int && cell.parse::<i64>().is_err() {
                    dtype = DataType::Float;
                }
                if dtype == DataType::Float && cell.parse::<f64>().is_err() {
                    dtype = DataType::Cat;
                    break;
                }
            }
            fields.push(Field::new(*name, dtype));
        }
        let mut builder = TableBuilder::new(Schema::new(fields));
        for (ri, raw) in rows.iter().enumerate() {
            if raw.len() != names.len() {
                return Err(StorageError::Malformed(format!(
                    "row {ri} has {} cells, expected {}",
                    raw.len(),
                    names.len()
                )));
            }
            let vals: Result<Vec<Value>, StorageError> = raw
                .iter()
                .zip(builder.schema.fields())
                .map(|(cell, f)| parse_cell(cell, f.dtype))
                .collect();
            builder.push_row(vals?)?;
        }
        Ok(builder.finish())
    }
}

fn parse_cell(cell: &str, dtype: DataType) -> Result<Value, StorageError> {
    match dtype {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| StorageError::Malformed(format!("bad int: {cell}"))),
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| StorageError::Malformed(format!("bad float: {cell}"))),
        DataType::Cat => Ok(Value::str(cell)),
    }
}

/// Row-at-a-time or column-at-a-time construction of a [`Table`].
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.dtype))
            .collect();
        TableBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn push_row(&mut self, values: Vec<Value>) -> Result<(), StorageError> {
        if values.len() != self.columns.len() {
            return Err(StorageError::Malformed(format!(
                "row width {} != schema width {}",
                values.len(),
                self.columns.len()
            )));
        }
        for (col, v) in self.columns.iter_mut().zip(&values) {
            col.push(v).map_err(StorageError::TypeMismatch)?;
        }
        self.rows += 1;
        Ok(())
    }

    pub fn finish(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
            rows: self.rows,
        }
    }

    pub fn finish_shared(self) -> Arc<Table> {
        Arc::new(self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![
            Value::Int(2015),
            Value::str("chair"),
            Value::Float(10.0),
        ])
        .unwrap();
        b.push_row(vec![
            Value::Int(2016),
            Value::str("desk"),
            Value::Float(20.5),
        ])
        .unwrap();
        b.finish()
    }

    #[test]
    fn build_and_read_back() {
        let t = sample();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(
            t.row(1),
            vec![Value::Int(2016), Value::str("desk"), Value::Float(20.5)]
        );
        assert_eq!(t.column("product").unwrap().cardinality(), 2);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn attribute_classification() {
        let t = sample();
        assert_eq!(t.categorical_names(), vec!["product"]);
        assert_eq!(t.numeric_names(), vec!["year", "sales"]);
        assert_eq!(t.attribute_names(), vec!["year", "product", "sales"]);
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample();
        let csv = t.to_csv();
        let t2 = Table::from_csv(&csv).unwrap();
        assert_eq!(t2.num_rows(), 2);
        assert_eq!(t2.schema().field("year").unwrap().dtype, DataType::Int);
        assert_eq!(t2.schema().field("product").unwrap().dtype, DataType::Cat);
        assert_eq!(t2.schema().field("sales").unwrap().dtype, DataType::Float);
        assert_eq!(t2.row(0), t.row(0));
    }

    #[test]
    fn mismatched_row_width_rejected() {
        let t = sample();
        let mut b = TableBuilder::new(t.schema().clone());
        assert!(b.push_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn csv_bad_rows_rejected() {
        assert!(Table::from_csv("").is_err());
        assert!(Table::from_csv("a,b\n1").is_err());
        assert!(Table::from_csv("a\nx\n").is_ok());
        // mixed int/text column falls back to categorical
        let t = Table::from_csv("a\n1\nnot_an_int\n").unwrap();
        assert_eq!(t.schema().field("a").unwrap().dtype, DataType::Cat);
        // mixed int/float column falls back to float
        let t = Table::from_csv("a\n1\n2.5\n").unwrap();
        assert_eq!(t.schema().field("a").unwrap().dtype, DataType::Float);
    }
}
