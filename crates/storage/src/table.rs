//! Relations: schema + columns, with a builder and CSV import/export used
//! by the examples.

use crate::column::Column;
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global snapshot counter backing [`Table::version`]. Every table
/// construction *and* every mutation draws a fresh value, so a version
/// number identifies one immutable snapshot of one table's contents
/// process-wide — two tables (or two states of the same table) never
/// share a version. Within a single table's lifetime the version is
/// strictly increasing, which is what lets result caches treat
/// `(version, query)` as a self-invalidating key: once a table mutates,
/// its old version is never current again, so entries recorded under it
/// can never be served stale.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// One attribute of a relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// Column names and types of a [`Table`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        let by_name = fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        Schema { fields, by_name }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }
}

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    UnknownColumn(String),
    TypeMismatch(String),
    Malformed(String),
    Unsupported(String),
    /// The query's [`crate::lifecycle::QueryCtx`] was cancelled
    /// (explicitly, by deadline, by supersession, or by row budget)
    /// before the scan finished; any partial result was discarded and
    /// never reached the result cache.
    Cancelled,
    /// A parallel worker panicked mid-scan and was contained by the
    /// scheduler's `catch_unwind` boundary: siblings stopped claiming,
    /// partial accumulators were dropped before the merge, and nothing
    /// reached the result cache. `morsel` is the lowest-indexed morsel
    /// (or static shard) whose scan panicked; `payload` is the panic
    /// message. Transient: `zv-server`'s retry policy may re-run the
    /// query (parallel again, then serial).
    WorkerPanicked {
        /// Stringified panic payload of the first failing worker.
        payload: String,
        /// Morsel index (morsel scheduling) or shard index (static
        /// scheduling) whose scan panicked.
        morsel: u64,
    },
    /// A transient resource failure — e.g. worker fan-out could not
    /// start. The query did no partial work; retrying is safe.
    ResourceExhausted(String),
    /// A durable-storage failure (snapshot/WAL I/O, CRC mismatch, or
    /// an unusable data directory). Not transient: the persistence
    /// layer is fail-stop — a failed WAL append leaves the in-memory
    /// table unchanged, and repair goes through `checkpoint` or a
    /// restart-time recovery, never a blind retry.
    Io(String),
}

impl StorageError {
    /// True for errors a retry may cure (worker panics, resource
    /// exhaustion); false for deterministic failures (bad queries,
    /// cancellation) where retrying would just repeat the outcome.
    /// `zv-server`'s retry/degrade ladder keys on this split.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StorageError::WorkerPanicked { .. } | StorageError::ResourceExhausted(_)
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StorageError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            StorageError::Malformed(m) => write!(f, "malformed input: {m}"),
            StorageError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            StorageError::Cancelled => write!(f, "query cancelled"),
            StorageError::WorkerPanicked { payload, morsel } => {
                write!(f, "worker panicked at morsel {morsel}: {payload}")
            }
            StorageError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            StorageError::Io(m) => write!(f, "storage i/o: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Ancestor snapshots remembered per table for incremental view
/// maintenance ([`Table::ancestor_rows`]). Old entries age out oldest
/// first; a version that fell off the chain simply stops being provable
/// as a pure-append ancestor, so IVM declines and recomputes — never a
/// correctness hazard.
const LINEAGE_CAP: usize = 64;

/// An in-memory relation: schema + columns + a snapshot version.
///
/// A `Table` is immutable through shared references; owners can grow it
/// with [`Table::append_rows`] / [`Table::append_table`], each of which
/// bumps [`Table::version`] to a fresh process-unique value. Engines use
/// the version as the invalidation half of their result-cache keys.
///
/// Every version-bumping append also records `(old version, old row
/// count)` on an in-table lineage chain, which is what lets the result
/// cache *prove* "this snapshot is the ancestor plus appended rows
/// `[rows(v_old), rows(v_new))` and nothing else" — the precondition for
/// delta-merging a cached result instead of rescanning the table
/// ([`crate::cache`]'s incremental view maintenance).
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    version: u64,
    /// `(version, rows)` of ancestor snapshots, oldest first. Appends are
    /// the only writers, so membership proves pure-append reachability.
    lineage: Vec<(u64, usize)>,
}

impl Table {
    /// Assemble a table from pre-built columns (the fast generator path).
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Table, StorageError> {
        if schema.len() != columns.len() {
            return Err(StorageError::Malformed(format!(
                "{} fields but {} columns",
                schema.len(),
                columns.len()
            )));
        }
        for (f, c) in schema.fields().iter().zip(&columns) {
            if f.dtype != c.dtype() {
                return Err(StorageError::TypeMismatch(format!(
                    "column {} declared {} but built {}",
                    f.name,
                    f.dtype,
                    c.dtype()
                )));
            }
        }
        let rows = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(StorageError::Malformed(
                "columns have differing lengths".into(),
            ));
        }
        Ok(Table {
            schema,
            columns,
            rows,
            version: next_version(),
            lineage: Vec::new(),
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// The snapshot version of this table's contents: process-unique, and
    /// strictly increasing across mutations of the same table. See
    /// [`crate::cache`] for how engines key result caches on it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Restore a durable snapshot version recorded by the persistence
    /// layer (`crate::persist` recovery only). Overwrites the freshly
    /// drawn version *and* advances the process-wide counter past it,
    /// so every version minted after a recovery is still unique and
    /// strictly greater — cached results keyed under restored versions
    /// keep their meaning across restarts.
    pub(crate) fn restore_version(&mut self, version: u64) {
        self.version = version;
        // Replayed appends recorded temporary versions no cached result
        // was ever keyed under; recovery is not a provable pure append
        // from anything cached, so the chain restarts empty.
        self.lineage.clear();
        NEXT_VERSION.fetch_max(version + 1, Ordering::Relaxed);
    }

    /// The row count this table had at ancestor snapshot `version`, or
    /// `None` if that version is not on the pure-append lineage chain
    /// (too old, from another table, or severed by recovery). The current
    /// version answers with the current row count. `Some(r)` is a proof
    /// that rows `0..r` of this table are bit-for-bit the rows of
    /// `version` — appends only ever push — which is the soundness
    /// condition for the cache's delta maintenance.
    pub fn ancestor_rows(&self, version: u64) -> Option<usize> {
        if version == self.version {
            return Some(self.rows);
        }
        self.lineage
            .iter()
            .rev()
            .find(|&&(v, _)| v == version)
            .map(|&(_, r)| r)
    }

    /// Record the retiring snapshot on the lineage chain (append paths
    /// only — callers bump the version right after).
    fn push_lineage(&mut self) {
        if self.lineage.len() == LINEAGE_CAP {
            self.lineage.remove(0);
        }
        self.lineage.push((self.version, self.rows));
    }

    /// Append rows (each a full-width `Vec<Value>`) and bump the version.
    ///
    /// The append is atomic: every row is validated against the schema
    /// (width and type, with the same Int↔Float coercions as
    /// [`TableBuilder::push_row`]) before any row is stored, so a failed
    /// append leaves the table untouched. Returns the number of rows
    /// appended. An empty batch is a no-op: the version is *not* bumped,
    /// so cached results stay valid.
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> Result<usize, StorageError> {
        if rows.is_empty() {
            return Ok(0);
        }
        for (ri, row) in rows.iter().enumerate() {
            if row.len() != self.columns.len() {
                return Err(StorageError::Malformed(format!(
                    "append row {ri} has width {}, schema width {}",
                    row.len(),
                    self.columns.len()
                )));
            }
            for (col, v) in self.columns.iter().zip(row) {
                if !col.accepts(v) {
                    return Err(StorageError::TypeMismatch(format!(
                        "append row {ri}: cannot store {v:?} in {} column",
                        col.dtype()
                    )));
                }
            }
        }
        self.push_lineage();
        for row in rows {
            for (col, v) in self.columns.iter_mut().zip(row) {
                col.push(v).map_err(StorageError::TypeMismatch)?;
            }
        }
        self.rows += rows.len();
        self.version = next_version();
        Ok(rows.len())
    }

    /// Append every row of `other` (whose schema must match exactly) and
    /// bump the version. Columnar fast path: numeric columns are extended
    /// slice-at-a-time and categorical codes are remapped through a
    /// per-dictionary translation table instead of re-hashing row strings.
    pub fn append_table(&mut self, other: &Table) -> Result<usize, StorageError> {
        if self.schema != other.schema {
            return Err(StorageError::Malformed(format!(
                "append_table schema mismatch: [{}] vs [{}]",
                self.schema.names().collect::<Vec<_>>().join(", "),
                other.schema.names().collect::<Vec<_>>().join(", ")
            )));
        }
        if other.rows == 0 {
            // No-op append: keep the version (and cached results) intact.
            return Ok(0);
        }
        self.push_lineage();
        for (col, oc) in self.columns.iter_mut().zip(&other.columns) {
            col.append(oc).map_err(StorageError::TypeMismatch)?;
        }
        self.rows += other.rows;
        self.version = next_version();
        Ok(other.rows)
    }

    pub fn column(&self, name: &str) -> Result<&Column, StorageError> {
        self.schema
            .index_of(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// All attribute names usable as an axis (the `*` attribute set).
    pub fn attribute_names(&self) -> Vec<String> {
        self.schema.names().map(str::to_string).collect()
    }

    /// Names of categorical attributes (candidate Z axes).
    pub fn categorical_names(&self) -> Vec<String> {
        self.schema
            .fields()
            .iter()
            .filter(|f| f.dtype == DataType::Cat)
            .map(|f| f.name.clone())
            .collect()
    }

    /// Names of numeric attributes (candidate Y measures).
    pub fn numeric_names(&self) -> Vec<String> {
        self.schema
            .fields()
            .iter()
            .filter(|f| f.dtype != DataType::Cat)
            .map(|f| f.name.clone())
            .collect()
    }

    /// Serialize to CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.schema.names().collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in 0..self.rows {
            let row: Vec<String> = self.columns.iter().map(|c| c.get(r).to_string()).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Parse a CSV string; column types are inferred from the first data
    /// row (int, then float, then categorical).
    pub fn from_csv(csv: &str) -> Result<Table, StorageError> {
        let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| StorageError::Malformed("empty csv".into()))?;
        let names: Vec<&str> = header.split(',').map(str::trim).collect();
        let rows: Vec<Vec<&str>> = lines
            .map(|l| l.split(',').map(str::trim).collect())
            .collect();
        if rows.is_empty() {
            return Err(StorageError::Malformed("csv has no data rows".into()));
        }
        let mut fields = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            // Infer the narrowest type every data row satisfies.
            let mut dtype = DataType::Int;
            for row in &rows {
                let cell = *row
                    .get(i)
                    .ok_or_else(|| StorageError::Malformed(format!("row missing column {name}")))?;
                if dtype == DataType::Int && cell.parse::<i64>().is_err() {
                    dtype = DataType::Float;
                }
                if dtype == DataType::Float && cell.parse::<f64>().is_err() {
                    dtype = DataType::Cat;
                    break;
                }
            }
            fields.push(Field::new(*name, dtype));
        }
        let mut builder = TableBuilder::new(Schema::new(fields));
        for (ri, raw) in rows.iter().enumerate() {
            if raw.len() != names.len() {
                return Err(StorageError::Malformed(format!(
                    "row {ri} has {} cells, expected {}",
                    raw.len(),
                    names.len()
                )));
            }
            let vals: Result<Vec<Value>, StorageError> = raw
                .iter()
                .zip(builder.schema.fields())
                .map(|(cell, f)| parse_cell(cell, f.dtype))
                .collect();
            builder.push_row(vals?)?;
        }
        Ok(builder.finish())
    }
}

fn parse_cell(cell: &str, dtype: DataType) -> Result<Value, StorageError> {
    match dtype {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| StorageError::Malformed(format!("bad int: {cell}"))),
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| StorageError::Malformed(format!("bad float: {cell}"))),
        DataType::Cat => Ok(Value::str(cell)),
    }
}

/// Row-at-a-time or column-at-a-time construction of a [`Table`].
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    /// Columns encode under the process-wide `ZV_ENCODING` policy (see
    /// [`crate::column::EncodePolicy::from_env`]).
    pub fn new(schema: Schema) -> Self {
        Self::with_encoding(schema, crate::column::EncodePolicy::from_env())
    }

    /// Like [`TableBuilder::new`] but with an explicit per-chunk
    /// encoding policy, so one process can build encoded and plain
    /// twins of the same table without racing on the environment.
    pub fn with_encoding(schema: Schema, policy: crate::column::EncodePolicy) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_policy(f.dtype, policy))
            .collect();
        TableBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn push_row(&mut self, values: Vec<Value>) -> Result<(), StorageError> {
        if values.len() != self.columns.len() {
            return Err(StorageError::Malformed(format!(
                "row width {} != schema width {}",
                values.len(),
                self.columns.len()
            )));
        }
        for (col, v) in self.columns.iter_mut().zip(&values) {
            col.push(v).map_err(StorageError::TypeMismatch)?;
        }
        self.rows += 1;
        Ok(())
    }

    pub fn finish(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
            rows: self.rows,
            version: next_version(),
            lineage: Vec::new(),
        }
    }

    pub fn finish_shared(self) -> Arc<Table> {
        Arc::new(self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![
            Value::Int(2015),
            Value::str("chair"),
            Value::Float(10.0),
        ])
        .unwrap();
        b.push_row(vec![
            Value::Int(2016),
            Value::str("desk"),
            Value::Float(20.5),
        ])
        .unwrap();
        b.finish()
    }

    #[test]
    fn build_and_read_back() {
        let t = sample();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(
            t.row(1),
            vec![Value::Int(2016), Value::str("desk"), Value::Float(20.5)]
        );
        assert_eq!(t.column("product").unwrap().cardinality(), 2);
        assert!(t.column("nope").is_err());
    }

    #[test]
    fn attribute_classification() {
        let t = sample();
        assert_eq!(t.categorical_names(), vec!["product"]);
        assert_eq!(t.numeric_names(), vec!["year", "sales"]);
        assert_eq!(t.attribute_names(), vec!["year", "product", "sales"]);
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample();
        let csv = t.to_csv();
        let t2 = Table::from_csv(&csv).unwrap();
        assert_eq!(t2.num_rows(), 2);
        assert_eq!(t2.schema().field("year").unwrap().dtype, DataType::Int);
        assert_eq!(t2.schema().field("product").unwrap().dtype, DataType::Cat);
        assert_eq!(t2.schema().field("sales").unwrap().dtype, DataType::Float);
        assert_eq!(t2.row(0), t.row(0));
    }

    #[test]
    fn append_rows_bumps_version_and_validates_atomically() {
        let mut t = sample();
        let v0 = t.version();
        let n = t
            .append_rows(&[
                vec![Value::Int(2017), Value::str("lamp"), Value::Float(3.5)],
                vec![Value::Int(2018), Value::str("chair"), Value::Float(4.0)],
            ])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.num_rows(), 4);
        assert!(t.version() > v0, "append must advance the version");
        assert_eq!(
            t.row(2),
            vec![Value::Int(2017), Value::str("lamp"), Value::Float(3.5)]
        );

        // A bad row anywhere in the batch must leave the table untouched.
        let v1 = t.version();
        let err = t.append_rows(&[
            vec![Value::Int(2019), Value::str("desk"), Value::Float(1.0)],
            vec![Value::Int(2019), Value::Float(9.9), Value::Float(1.0)],
        ]);
        assert!(err.is_err());
        assert_eq!(t.num_rows(), 4, "failed append must be atomic");
        assert_eq!(t.version(), v1, "failed append must not bump the version");
        assert!(t
            .append_rows(&[vec![Value::Int(2019), Value::str("desk")]])
            .is_err());
    }

    #[test]
    fn append_table_remaps_dictionaries() {
        let mut a = sample();
        let mut b = TableBuilder::new(a.schema().clone());
        // "desk" and "sofa" intern in a different order than in `a`.
        b.push_row(vec![
            Value::Int(2017),
            Value::str("desk"),
            Value::Float(1.0),
        ])
        .unwrap();
        b.push_row(vec![
            Value::Int(2018),
            Value::str("sofa"),
            Value::Float(2.0),
        ])
        .unwrap();
        let b = b.finish();
        let v0 = a.version();
        assert_eq!(a.append_table(&b).unwrap(), 2);
        assert_eq!(a.num_rows(), 4);
        assert!(a.version() > v0);
        assert_eq!(a.row(2)[1], Value::str("desk"));
        assert_eq!(a.row(3)[1], Value::str("sofa"));
        assert_eq!(a.column("product").unwrap().cardinality(), 3);

        // Mismatched schema rejected.
        let other = Table::from_csv("a\n1\n").unwrap();
        assert!(a.append_table(&other).is_err());
    }

    #[test]
    fn empty_appends_do_not_bump_the_version() {
        let mut t = sample();
        let v = t.version();
        assert_eq!(t.append_rows(&[]).unwrap(), 0);
        assert_eq!(t.version(), v, "empty batch must not retire the snapshot");
        let empty = TableBuilder::new(t.schema().clone()).finish();
        assert_eq!(t.append_table(&empty).unwrap(), 0);
        assert_eq!(t.version(), v);
    }

    #[test]
    fn lineage_proves_pure_append_ancestry() {
        let mut t = sample();
        let v0 = t.version();
        assert_eq!(t.ancestor_rows(v0), Some(2), "current version is trivial");
        t.append_rows(&[vec![
            Value::Int(2017),
            Value::str("lamp"),
            Value::Float(3.5),
        ]])
        .unwrap();
        let v1 = t.version();
        assert_eq!(t.ancestor_rows(v0), Some(2), "v0 had two rows");
        assert_eq!(t.ancestor_rows(v1), Some(3));
        let other = sample();
        assert_eq!(
            t.ancestor_rows(other.version()),
            None,
            "foreign versions are not ancestors"
        );
        // Failed and empty appends leave the chain untouched.
        assert!(t
            .append_rows(&[vec![Value::Int(1), Value::Float(2.0), Value::Float(3.0)]])
            .is_err());
        assert_eq!(t.append_rows(&[]).unwrap(), 0);
        assert_eq!(t.ancestor_rows(v0), Some(2));
        assert_eq!(t.version(), v1);
    }

    #[test]
    fn lineage_ages_out_oldest_first() {
        let mut t = sample();
        let v0 = t.version();
        for i in 0..super::LINEAGE_CAP as i64 {
            t.append_rows(&[vec![
                Value::Int(2020 + i),
                Value::str("x"),
                Value::Float(1.0),
            ]])
            .unwrap();
        }
        // The chain holds exactly LINEAGE_CAP entries, v0 still among
        // them; the next append pushes it out.
        assert_eq!(t.ancestor_rows(v0), Some(2));
        t.append_rows(&[vec![Value::Int(1), Value::str("y"), Value::Float(1.0)]])
            .unwrap();
        assert_eq!(
            t.ancestor_rows(v0),
            None,
            "the original snapshot fell off the capped chain"
        );
        // The most recent retirees are still provable.
        let vn = t.version();
        t.append_rows(&[vec![Value::Int(1), Value::str("y"), Value::Float(1.0)]])
            .unwrap();
        assert_eq!(t.ancestor_rows(vn), Some(3 + super::LINEAGE_CAP));
    }

    #[test]
    fn versions_are_process_unique() {
        let t1 = sample();
        let t2 = sample();
        assert_ne!(
            t1.version(),
            t2.version(),
            "independent builds must not share a version"
        );
    }

    #[test]
    fn mismatched_row_width_rejected() {
        let t = sample();
        let mut b = TableBuilder::new(t.schema().clone());
        assert!(b.push_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn csv_bad_rows_rejected() {
        assert!(Table::from_csv("").is_err());
        assert!(Table::from_csv("a,b\n1").is_err());
        assert!(Table::from_csv("a\nx\n").is_ok());
        // mixed int/text column falls back to categorical
        let t = Table::from_csv("a\n1\nnot_an_int\n").unwrap();
        assert_eq!(t.schema().field("a").unwrap().dtype, DataType::Cat);
        // mixed int/float column falls back to float
        let t = Table::from_csv("a\n1\n2.5\n").unwrap();
        assert_eq!(t.schema().field("a").unwrap().dtype, DataType::Float);
    }
}
