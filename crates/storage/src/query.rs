//! The canonical query shape every compiled ZQL visualization reduces to
//! (thesis §5.1):
//!
//! ```sql
//! SELECT X, F(Y), ... [, Z, ...]
//! WHERE  <constraints>
//! GROUP BY Z..., X
//! ORDER BY Z..., X
//! ```
//!
//! and its grouped result representation.

use crate::json::{fmt_f64, parse_f64, Json};
use crate::predicate::Predicate;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Aggregation function applied to a Y measure (the `y=agg('sum')`
/// summarization of the Viz column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Agg {
    Sum,
    Avg,
    Count,
    Min,
    Max,
}

impl Agg {
    pub fn parse(name: &str) -> Option<Agg> {
        match name.to_ascii_lowercase().as_str() {
            "sum" => Some(Agg::Sum),
            "avg" | "mean" => Some(Agg::Avg),
            "count" => Some(Agg::Count),
            "min" => Some(Agg::Min),
            "max" => Some(Agg::Max),
            _ => None,
        }
    }
}

impl fmt::Display for Agg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Agg::Sum => "SUM",
            Agg::Avg => "AVG",
            Agg::Count => "COUNT",
            Agg::Min => "MIN",
            Agg::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// The X axis: a column, optionally binned (`x=bin(20)` in the Viz column).
#[derive(Clone, Debug, PartialEq)]
pub struct XSpec {
    pub col: String,
    /// Bin width for numeric X axes; `None` groups on raw values.
    pub bin: Option<f64>,
}

impl XSpec {
    pub fn raw(col: impl Into<String>) -> Self {
        XSpec {
            col: col.into(),
            bin: None,
        }
    }

    pub fn binned(col: impl Into<String>, width: f64) -> Self {
        XSpec {
            col: col.into(),
            bin: Some(width),
        }
    }
}

/// One aggregated Y measure.
#[derive(Clone, Debug, PartialEq)]
pub struct YSpec {
    pub col: String,
    pub agg: Agg,
}

impl YSpec {
    pub fn new(col: impl Into<String>, agg: Agg) -> Self {
        YSpec {
            col: col.into(),
            agg,
        }
    }

    pub fn sum(col: impl Into<String>) -> Self {
        Self::new(col, Agg::Sum)
    }

    pub fn avg(col: impl Into<String>) -> Self {
        Self::new(col, Agg::Avg)
    }
}

/// A grouped-aggregate query against a single table.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectQuery {
    pub x: XSpec,
    pub ys: Vec<YSpec>,
    /// Slicing attributes; their values are part of the output, one
    /// result series per distinct combination (§3.3: "the values for the
    /// Z columns are returned as part of the output").
    pub zs: Vec<String>,
    pub predicate: Predicate,
}

impl SelectQuery {
    pub fn new(x: XSpec, ys: Vec<YSpec>) -> Self {
        SelectQuery {
            x,
            ys,
            zs: Vec::new(),
            predicate: Predicate::True,
        }
    }

    pub fn with_z(mut self, z: impl Into<String>) -> Self {
        self.zs.push(z.into());
        self
    }

    pub fn with_predicate(mut self, p: Predicate) -> Self {
        self.predicate = p;
        self
    }

    /// Render as the SQL the paper's compiler would emit (for logs/tests).
    pub fn to_sql(&self) -> String {
        let mut sel: Vec<String> = vec![self.x.col.clone()];
        for y in &self.ys {
            sel.push(format!("{}({})", y.agg, y.col));
        }
        sel.extend(self.zs.iter().cloned());
        let mut group: Vec<String> = self.zs.clone();
        group.push(self.x.col.clone());
        let mut sql = format!("SELECT {}", sel.join(", "));
        if !self.predicate.is_true() {
            sql.push_str(&format!(" WHERE {}", self.predicate));
        }
        sql.push_str(&format!(" GROUP BY {g} ORDER BY {g}", g = group.join(", ")));
        sql
    }
}

/// The aggregated series for one Z-combination.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSeries {
    /// One value per Z column of the query (empty when no Z was given).
    pub key: Vec<Value>,
    /// X values in ascending order. For binned X axes these are the bin
    /// lower bounds.
    pub xs: Vec<Value>,
    /// One vector per [`YSpec`], aligned with `xs`.
    pub ys: Vec<Vec<f64>>,
}

impl GroupSeries {
    /// Approximate heap footprint, used by the result cache's byte bound.
    pub fn approx_bytes(&self) -> usize {
        fn value_bytes(v: &Value) -> usize {
            std::mem::size_of::<Value>()
                + match v {
                    Value::Str(s) => s.len(),
                    _ => 0,
                }
        }
        std::mem::size_of::<Self>()
            + self.key.iter().map(value_bytes).sum::<usize>()
            + self.xs.iter().map(value_bytes).sum::<usize>()
            + self
                .ys
                .iter()
                .map(|y| std::mem::size_of::<Vec<f64>>() + y.len() * 8)
                .sum::<usize>()
    }

    /// A copy keeping only the `(x, y…)` cells at the given ascending
    /// positions — the cell-filter primitive behind the result cache's
    /// derivation executor (an aggregated cell is atomic: every
    /// aggregate stays exact when whole cells are kept or dropped).
    pub fn select_cells(&self, keep: &[usize]) -> GroupSeries {
        GroupSeries {
            key: self.key.clone(),
            xs: keep.iter().map(|&i| self.xs[i].clone()).collect(),
            ys: self
                .ys
                .iter()
                .map(|col| keep.iter().map(|&i| col[i]).collect())
                .collect(),
        }
    }

    /// The `(x, y)` pairs of measure `measure_idx` as f64, skipping
    /// non-numeric X values.
    pub fn points(&self, measure_idx: usize) -> Vec<(f64, f64)> {
        self.xs
            .iter()
            .zip(&self.ys[measure_idx])
            .filter_map(|(x, &y)| x.as_f64().map(|xf| (xf, y)))
            .collect()
    }
}

/// Result of a [`SelectQuery`]: groups ordered by `(key, x)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResultTable {
    pub z_cols: Vec<String>,
    pub groups: Vec<GroupSeries>,
}

impl ResultTable {
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Look up the series for a Z-key. Builds an index lazily per call —
    /// callers doing bulk extraction should use [`ResultTable::index`].
    pub fn group(&self, key: &[Value]) -> Option<&GroupSeries> {
        self.groups.iter().find(|g| g.key == key)
    }

    /// A key → position index for the extraction phase (§5.2: "the
    /// compiled code must now have an extra phase to extract the data for
    /// different visualizations from the combined results").
    pub fn index(&self) -> HashMap<&[Value], usize> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| (g.key.as_slice(), i))
            .collect()
    }

    /// Total number of `(group, x)` cells — the paper's "number of groups"
    /// metric for Figure 7.4.
    pub fn cell_count(&self) -> usize {
        self.groups.iter().map(|g| g.xs.len()).sum()
    }

    /// Approximate heap footprint, used by the result cache's byte bound.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .z_cols
                .iter()
                .map(|c| std::mem::size_of::<String>() + c.len())
                .sum::<usize>()
            + self
                .groups
                .iter()
                .map(GroupSeries::approx_bytes)
                .sum::<usize>()
    }

    /// Serialize for the wire (`zv-server`'s result frames). Floats —
    /// both [`Value::Float`] cells and the `ys` measures — travel as
    /// shortest-round-trip *strings* ([`crate::json::fmt_f64`]), so the
    /// decoded table is bit-for-bit the encoded one, including `NaN`,
    /// infinities, and `-0.0` (JSON numbers cannot carry the first two
    /// at all and drop the sign of the last in some readers). Ints are
    /// strings too: `i64` exceeds the 2^53 exact range of JSON numbers.
    pub fn to_json(&self) -> Json {
        let groups = self
            .groups
            .iter()
            .map(|g| {
                Json::Obj(vec![
                    (
                        "k".into(),
                        Json::Arr(g.key.iter().map(value_json).collect()),
                    ),
                    ("x".into(), Json::Arr(g.xs.iter().map(value_json).collect())),
                    (
                        "y".into(),
                        Json::Arr(
                            g.ys.iter()
                                .map(|col| {
                                    Json::Arr(col.iter().map(|&v| Json::Str(fmt_f64(v))).collect())
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "z".into(),
                Json::Arr(self.z_cols.iter().map(Json::str).collect()),
            ),
            ("groups".into(), Json::Arr(groups)),
        ])
    }

    /// Inverse of [`ResultTable::to_json`]; rejects anything that is not
    /// a faithful encoding (a damaged frame must surface, not produce a
    /// plausible-looking table).
    pub fn from_json(j: &Json) -> Result<ResultTable, String> {
        let z_cols = j
            .get("z")
            .and_then(Json::as_arr)
            .ok_or("result table: missing \"z\" array")?
            .iter()
            .map(|v| v.as_str().map(str::to_owned))
            .collect::<Option<Vec<_>>>()
            .ok_or("result table: non-string z column")?;
        let mut groups = Vec::new();
        for g in j
            .get("groups")
            .and_then(Json::as_arr)
            .ok_or("result table: missing \"groups\" array")?
        {
            let values = |field: &str| -> Result<Vec<Value>, String> {
                g.get(field)
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("result table: group missing {field:?}"))?
                    .iter()
                    .map(value_from_json)
                    .collect()
            };
            let key = values("k")?;
            let xs = values("x")?;
            let mut ys = Vec::new();
            for col in g
                .get("y")
                .and_then(Json::as_arr)
                .ok_or("result table: group missing \"y\"")?
            {
                let col = col
                    .as_arr()
                    .ok_or("result table: \"y\" entry is not an array")?
                    .iter()
                    .map(|v| v.as_str().and_then(parse_f64))
                    .collect::<Option<Vec<f64>>>()
                    .ok_or("result table: unparseable measure value")?;
                if col.len() != xs.len() {
                    return Err("result table: measure column misaligned with xs".into());
                }
                ys.push(col);
            }
            groups.push(GroupSeries { key, xs, ys });
        }
        Ok(ResultTable { z_cols, groups })
    }
}

/// One [`Value`] as wire JSON: `null`, `{"i":"<i64>"}`, `{"f":"<f64>"}`,
/// or `{"s":"…"}` — numbers as strings for exact round-trips (see
/// [`ResultTable::to_json`]).
fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(i) => Json::Obj(vec![("i".into(), Json::Str(i.to_string()))]),
        Value::Float(f) => Json::Obj(vec![("f".into(), Json::Str(fmt_f64(*f)))]),
        Value::Str(s) => Json::Obj(vec![("s".into(), Json::str(s))]),
    }
}

fn value_from_json(j: &Json) -> Result<Value, String> {
    if j.is_null() {
        return Ok(Value::Null);
    }
    if let Some(s) = j.get("i").and_then(Json::as_str) {
        return s
            .parse()
            .map(Value::Int)
            .map_err(|_| format!("result table: bad int {s:?}"));
    }
    if let Some(s) = j.get("f").and_then(Json::as_str) {
        return parse_f64(s)
            .map(Value::Float)
            .ok_or_else(|| format!("result table: bad float {s:?}"));
    }
    if let Some(s) = j.get("s").and_then(Json::as_str) {
        return Ok(Value::str(s));
    }
    Err("result table: unrecognized value encoding".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_rendering_matches_section_5_shape() {
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_z("product")
            .with_predicate(Predicate::cat_eq("location", "US"));
        assert_eq!(
            q.to_sql(),
            "SELECT year, SUM(sales), product WHERE location='US' \
             GROUP BY product, year ORDER BY product, year"
        );
    }

    #[test]
    fn sql_rendering_without_predicate_or_z() {
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::avg("profit")]);
        assert_eq!(
            q.to_sql(),
            "SELECT year, AVG(profit) GROUP BY year ORDER BY year"
        );
    }

    #[test]
    fn agg_parsing() {
        assert_eq!(Agg::parse("sum"), Some(Agg::Sum));
        assert_eq!(Agg::parse("AVG"), Some(Agg::Avg));
        assert_eq!(Agg::parse("bogus"), None);
    }

    #[test]
    fn result_table_json_roundtrips_bit_for_bit() {
        let rt = ResultTable {
            z_cols: vec!["product".into(), "loc".into()],
            groups: vec![
                GroupSeries {
                    key: vec![Value::str("chair \"quoted\"\n"), Value::Null],
                    xs: vec![Value::Int(i64::MIN), Value::Int(2015), Value::Float(-0.0)],
                    ys: vec![
                        vec![1.0 / 3.0, f64::NAN, f64::NEG_INFINITY],
                        vec![0.0, -0.0, f64::MAX],
                    ],
                },
                GroupSeries {
                    key: vec![],
                    xs: vec![],
                    ys: vec![],
                },
            ],
        };
        let encoded = rt.to_json().to_string();
        assert!(!encoded.contains('\n'), "wire frames are single-line");
        let back =
            ResultTable::from_json(&Json::parse(&encoded).expect("parses")).expect("decodes");
        assert_eq!(back.z_cols, rt.z_cols);
        assert_eq!(back.groups.len(), rt.groups.len());
        for (a, b) in back.groups.iter().zip(&rt.groups) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.xs, b.xs);
            // Bit-level equality (PartialEq would fail on NaN and miss
            // the -0.0 sign).
            assert_eq!(a.ys.len(), b.ys.len());
            for (ca, cb) in a.ys.iter().zip(&b.ys) {
                let bits = |col: &[f64]| col.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(ca), bits(cb));
            }
        }
        // A -0.0 x-value keeps its sign through the Value encoding.
        match back.groups[0].xs[2] {
            Value::Float(f) => assert_eq!(f.to_bits(), (-0.0f64).to_bits()),
            ref other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn result_table_json_rejects_damage() {
        let rt = ResultTable {
            z_cols: vec!["z".into()],
            groups: vec![GroupSeries {
                key: vec![Value::Int(1)],
                xs: vec![Value::Int(2)],
                ys: vec![vec![3.0]],
            }],
        };
        let good = rt.to_json().to_string();
        for bad in [
            good.replace("\"z\"", "\"zz\""),
            good.replace("\"groups\"", "\"grps\""),
            good.replace("\"3\"", "\"not-a-number\""),
            // Misaligned measure column (two ys, one x).
            good.replace("[\"3\"]", "[\"3\",\"4\"]"),
        ] {
            let parsed = Json::parse(&bad).expect("still valid JSON");
            assert!(ResultTable::from_json(&parsed).is_err(), "{bad}");
        }
    }

    #[test]
    fn group_lookup_and_points() {
        let rt = ResultTable {
            z_cols: vec!["product".into()],
            groups: vec![GroupSeries {
                key: vec![Value::str("chair")],
                xs: vec![Value::Int(2014), Value::Int(2015)],
                ys: vec![vec![1.0, 2.0]],
            }],
        };
        let g = rt.group(&[Value::str("chair")]).unwrap();
        assert_eq!(g.points(0), vec![(2014.0, 1.0), (2015.0, 2.0)]);
        assert!(rt.group(&[Value::str("desk")]).is_none());
        assert_eq!(rt.cell_count(), 2);
        assert_eq!(rt.index().len(), 1);
    }
}
