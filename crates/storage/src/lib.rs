//! # zv-storage
//!
//! The storage and query-execution substrate of the zenvisage
//! reproduction: an in-memory columnar store with from-scratch Roaring
//! bitmap indexes ([`BitmapDb`]) and a conventional scan-based comparator
//! ([`ScanDb`]), both serving the canonical grouped-aggregate query shape
//! that every ZQL visualization compiles to (thesis §5.1):
//!
//! ```sql
//! SELECT X, F(Y) [, Z] WHERE ... GROUP BY Z, X ORDER BY Z, X
//! ```
//!
//! ## Quick example
//!
//! ```
//! use zv_storage::{
//!     BitmapDb, Database, DataType, Field, Predicate, Schema, SelectQuery,
//!     TableBuilder, Value, XSpec, YSpec,
//! };
//!
//! let schema = Schema::new(vec![
//!     Field::new("year", DataType::Int),
//!     Field::new("product", DataType::Cat),
//!     Field::new("sales", DataType::Float),
//! ]);
//! let mut b = TableBuilder::new(schema);
//! b.push_row(vec![Value::Int(2015), Value::str("chair"), Value::Float(3.0)]).unwrap();
//! b.push_row(vec![Value::Int(2016), Value::str("chair"), Value::Float(5.0)]).unwrap();
//! let db = BitmapDb::new(b.finish_shared());
//!
//! let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
//!     .with_predicate(Predicate::cat_eq("product", "chair"));
//! let result = db.execute(&q).unwrap();
//! assert_eq!(result.groups[0].ys[0], vec![3.0, 5.0]);
//! ```

pub mod bitmap_db;
pub mod cache;
pub mod column;
pub mod db;
pub mod exec;
pub mod fault;
pub mod json;
pub mod lifecycle;
pub mod parallel;
pub mod persist;
pub mod predicate;
pub mod query;
pub mod roaring;
pub mod scan_db;
pub mod stats;
pub mod table;
pub mod value;

pub use bitmap_db::{BitmapDb, BitmapDbConfig};
pub use cache::{
    ivm_finalize, ivm_form, CacheConfig, CacheKey, CacheStats, InsertOutcome, IvmForm, IvmSource,
    QueryKey, ResultCache,
};
pub use column::{
    CatColumn, ChunkEncoding, CodeColumn, Column, EncodePolicy, EncodingCounts, EncodingMode,
    IntColumn,
};
pub use db::{Database, DynDatabase, EngineSnapshot};
pub use exec::{GroupStrategy, MorselMetrics, ParallelConfig, SchedulingMode};
pub use fault::{FaultPoint, FaultSpec};
pub use json::{Json, JsonError};
pub use lifecycle::{CancelReason, QueryCtx, QueryCtxStats};
pub use persist::{PersistOptions, PersistStats, Persistence, RecoveryReport};
pub use predicate::{Atom, CmpOp, Predicate};
pub use query::{Agg, GroupSeries, ResultTable, SelectQuery, XSpec, YSpec};
pub use roaring::RoaringBitmap;
pub use scan_db::{ScanDb, ScanDbConfig};
pub use stats::{ExecStats, StatsSnapshot};
pub use table::{Field, Schema, StorageError, Table, TableBuilder};
pub use value::{DataType, Value};

#[cfg(test)]
mod engine_equivalence {
    //! Both engines must produce identical results for any query — the
    //! load-bearing invariant behind Figure 7.5's apples-to-apples
    //! comparison.

    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn build_table(rows: &[(i64, u8, u8, i16)]) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("product", DataType::Cat),
            Field::new("location", DataType::Cat),
            Field::new("sales", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for &(y, p, l, s) in rows {
            b.push_row(vec![
                Value::Int(y),
                Value::str(format!("p{p}")),
                Value::str(format!("loc{l}")),
                // Exact dyadic measures: float sums stay associative, so
                // bit-for-bit equality holds across engines regardless of
                // how each one shards its scan (the CI scheduling matrix
                // forces parallel routing even on these tiny tables).
                Value::Float(s as f64 * 0.25),
            ])
            .unwrap();
        }
        b.finish_shared()
    }

    fn arb_rows() -> impl Strategy<Value = Vec<(i64, u8, u8, i16)>> {
        prop::collection::vec((2010i64..2020, 0u8..6, 0u8..3, -400i16..400), 1..200)
    }

    fn arb_pred() -> impl Strategy<Value = Predicate> {
        prop_oneof![
            Just(Predicate::True),
            (0u8..8).prop_map(|p| Predicate::cat_eq("product", format!("p{p}"))),
            (2008i64..2022).prop_map(|y| Predicate::num_eq("year", y as f64)),
            ((0u8..8), (0u8..4)).prop_map(|(p, l)| {
                Predicate::cat_eq("product", format!("p{p}"))
                    .and(Predicate::cat_eq("location", format!("loc{l}")))
            }),
            ((0u8..8), (0u8..8)).prop_map(|(a, b)| {
                Predicate::Or(vec![
                    vec![Atom::CatEq {
                        col: "product".into(),
                        value: format!("p{a}"),
                    }],
                    vec![Atom::CatEq {
                        col: "product".into(),
                        value: format!("p{b}"),
                    }],
                ])
            }),
            (-50.0f64..50.0).prop_map(|t| {
                Predicate::atom(Atom::NumCmp {
                    col: "sales".into(),
                    op: CmpOp::Gt,
                    value: t,
                })
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn bitmap_and_scan_agree(rows in arb_rows(), pred in arb_pred(), with_z in any::<bool>()) {
            let table = build_table(&rows);
            let bdb = BitmapDb::new(table.clone());
            let sdb = ScanDb::new(table.clone());
            let mut q = SelectQuery::new(
                XSpec::raw("year"),
                vec![YSpec::sum("sales"), YSpec::avg("sales")],
            )
            .with_predicate(pred);
            if with_z {
                q = q.with_z("product");
            }
            let a = bdb.execute(&q).unwrap();
            let b = sdb.execute(&q).unwrap();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn hash_and_dense_strategies_agree(rows in arb_rows()) {
            let table = build_table(&rows);
            // Force the bitmap engine into each strategy via config.
            let dense = BitmapDb::with_config(
                table.clone(),
                BitmapDbConfig { dense_group_limit: u128::MAX, ..Default::default() },
            );
            let hash = BitmapDb::with_config(
                table.clone(),
                BitmapDbConfig { dense_group_limit: 0, ..Default::default() },
            );
            let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
                .with_z("product")
                .with_z("location");
            prop_assert_eq!(dense.execute(&q).unwrap(), hash.execute(&q).unwrap());
        }
    }
}
