//! Engine-level cross-query result cache with table-version invalidation.
//!
//! PR 1's shared-pass cache deduplicates identical group-bys *within* one
//! ZQL execution; this module promotes the idea to the engine itself so
//! that *cross-request and cross-execution* repeats — the defining access
//! pattern of interactive sessions re-exploring the same slices — skip
//! the scan entirely. `Database::run_request` consults a [`ResultCache`]
//! before executing each query and stores every freshly computed
//! [`ResultTable`] afterwards.
//!
//! # The version-key invalidation scheme
//!
//! Cache entries are keyed by [`CacheKey`] =
//! `(engine name, table version, canonical query)`:
//!
//! * **Table version.** Every [`crate::Table`] snapshot carries a
//!   process-unique version drawn from a global counter; every mutation
//!   (`append_rows` / `append_table`) draws a fresh, strictly larger one.
//!   `run_request` reads the version *before* executing, so an entry
//!   recorded under version `v` describes data at least as new as `v`.
//!   Because a table's current version only ever moves forward, a lookup
//!   can only see entries whose version equals the *current* one — stale
//!   entries are unreachable by construction, with no locks shared
//!   between readers and writers of the table. Eviction (or the engines'
//!   courtesy [`ResultCache::invalidate_table_version`] call on append)
//!   merely reclaims their memory.
//! * **Canonical query.** [`QueryKey`] normalizes a [`SelectQuery`] so
//!   that semantically identical queries collide: conjunction atoms are
//!   sorted and deduplicated, `IN` lists are sorted (singletons become
//!   equality atoms), disjunctions are sorted with tautologies collapsed,
//!   and float literals are keyed by normalized bit patterns. Output
//!   *shape* — the order of Y measures and of Z group-by columns — is
//!   preserved verbatim, because it determines the shape of the result.
//!
//! # Bounds and concurrency
//!
//! The cache is a doubly-linked LRU bounded by **both** entry count and
//! approximate bytes ([`ResultTable::approx_bytes`]), guarded by one
//! mutex (operations touch a few pointers; the scan work they save is
//! orders of magnitude larger). Hit / miss / eviction / insertion
//! counters are kept internally and also mirrored into each engine's
//! [`crate::ExecStats`] by `run_request`.

use crate::predicate::{Atom, CmpOp, Predicate};
use crate::query::{Agg, ResultTable, SelectQuery};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Canonical query keys
// ---------------------------------------------------------------------

/// A predicate atom in canonical, hashable form. Float literals are
/// stored as normalized IEEE bits (`-0.0` folds onto `0.0`) so `Eq` and
/// `Hash` agree with predicate semantics.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum CanonAtom {
    CatEq { col: String, value: String },
    CatNeq { col: String, value: String },
    CatIn { col: String, values: Vec<String> },
    StrPrefix { col: String, prefix: String },
    NumCmp { col: String, op: CmpOp, bits: u64 },
    NumBetween { col: String, lo: u64, hi: u64 },
}

fn f64_bits(v: f64) -> u64 {
    // -0.0 and 0.0 compare equal in every predicate, so they must share
    // a key.
    if v == 0.0 {
        0f64.to_bits()
    } else {
        v.to_bits()
    }
}

fn canon_atom(a: &Atom) -> CanonAtom {
    match a {
        Atom::CatEq { col, value } => CanonAtom::CatEq {
            col: col.clone(),
            value: value.clone(),
        },
        Atom::CatNeq { col, value } => CanonAtom::CatNeq {
            col: col.clone(),
            value: value.clone(),
        },
        Atom::CatIn { col, values } => {
            let mut values = values.clone();
            values.sort();
            values.dedup();
            if values.len() == 1 {
                // `IN ('a')` ≡ `= 'a'`.
                CanonAtom::CatEq {
                    col: col.clone(),
                    value: values.pop().unwrap(),
                }
            } else {
                CanonAtom::CatIn {
                    col: col.clone(),
                    values,
                }
            }
        }
        Atom::StrPrefix { col, prefix } => CanonAtom::StrPrefix {
            col: col.clone(),
            prefix: prefix.clone(),
        },
        Atom::NumCmp { col, op, value } => CanonAtom::NumCmp {
            col: col.clone(),
            op: *op,
            bits: f64_bits(*value),
        },
        Atom::NumBetween { col, lo, hi } => CanonAtom::NumBetween {
            col: col.clone(),
            lo: f64_bits(*lo),
            hi: f64_bits(*hi),
        },
    }
}

/// Sorted, deduplicated conjunction.
fn canon_conj(atoms: &[Atom]) -> Vec<CanonAtom> {
    let mut out: Vec<CanonAtom> = atoms.iter().map(canon_atom).collect();
    out.sort();
    out.dedup();
    out
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum CanonPred {
    True,
    And(Vec<CanonAtom>),
    /// Note: an *empty* disjunction matches nothing and stays `Or([])`.
    Or(Vec<Vec<CanonAtom>>),
}

fn canon_pred(p: &Predicate) -> CanonPred {
    match p {
        Predicate::True => CanonPred::True,
        Predicate::And(atoms) => {
            let c = canon_conj(atoms);
            if c.is_empty() {
                CanonPred::True
            } else {
                CanonPred::And(c)
            }
        }
        Predicate::Or(disj) => {
            let mut conjs: Vec<Vec<CanonAtom>> = Vec::with_capacity(disj.len());
            for conj in disj {
                let c = canon_conj(conj);
                if c.is_empty() {
                    // An empty conjunct is `true`, so the whole
                    // disjunction is — same rule as `Predicate::is_true`.
                    return CanonPred::True;
                }
                conjs.push(c);
            }
            conjs.sort();
            conjs.dedup();
            if conjs.len() == 1 {
                // A one-conjunct disjunction is the same filter as a
                // plain conjunction.
                CanonPred::And(conjs.into_iter().next().unwrap())
            } else {
                CanonPred::Or(conjs)
            }
        }
    }
}

/// Canonical, hashable identity of a [`SelectQuery`].
///
/// Two queries map to the same `QueryKey` exactly when they are
/// guaranteed to produce identical [`ResultTable`]s on identical data:
/// predicate normalization folds semantically equal filters together,
/// while the result-shaping parts (X column and bin, Y measures in
/// order, Z columns in order) are preserved verbatim.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    x_col: String,
    x_bin: Option<u64>,
    ys: Vec<(String, Agg)>,
    zs: Vec<String>,
    pred: CanonPred,
}

impl QueryKey {
    pub fn of(q: &SelectQuery) -> QueryKey {
        QueryKey {
            x_col: q.x.col.clone(),
            x_bin: q.x.bin.map(f64_bits),
            ys: q.ys.iter().map(|y| (y.col.clone(), y.agg)).collect(),
            zs: q.zs.clone(),
            pred: canon_pred(&q.predicate),
        }
    }
}

/// Full cache key: which engine produced the result, over which table
/// snapshot, for which canonical query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub engine: &'static str,
    pub table_version: u64,
    pub query: QueryKey,
}

impl CacheKey {
    pub fn new(engine: &'static str, table_version: u64, query: &SelectQuery) -> CacheKey {
        CacheKey {
            engine,
            table_version,
            query: QueryKey::of(query),
        }
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Capacity bounds for a [`ResultCache`]. A zero in either field
/// disables caching entirely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    pub max_entries: usize,
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 1024,
            max_bytes: 64 << 20, // 64 MiB of aggregated series
        }
    }
}

impl CacheConfig {
    pub fn disabled() -> Self {
        CacheConfig {
            max_entries: 0,
            max_bytes: 0,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.max_entries > 0 && self.max_bytes > 0
    }
}

/// Point-in-time cache counters (monotonic except `entries`/`bytes`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub entries: usize,
    pub bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------
// The LRU store
// ---------------------------------------------------------------------

const NIL: usize = usize::MAX;

struct Slot {
    key: CacheKey,
    value: Arc<ResultTable>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// Slab-backed doubly-linked LRU list + key index. Head = most recent.
#[derive(Default)]
struct Lru {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
}

impl Lru {
    fn new() -> Self {
        Lru {
            head: NIL,
            tail: NIL,
            ..Default::default()
        }
    }

    fn slot(&self, i: usize) -> &Slot {
        self.slots[i].as_ref().expect("live slot")
    }

    fn slot_mut(&mut self, i: usize) -> &mut Slot {
        self.slots[i].as_mut().expect("live slot")
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slot(i);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        let old_head = self.head;
        {
            let s = self.slot_mut(i);
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slot_mut(old_head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Remove slot `i` entirely, returning its freed byte count.
    fn remove(&mut self, i: usize) -> usize {
        self.unlink(i);
        let slot = self.slots[i].take().expect("live slot");
        self.map.remove(&slot.key);
        self.free.push(i);
        self.bytes -= slot.bytes;
        slot.bytes
    }

    fn insert_front(&mut self, key: CacheKey, value: Arc<ResultTable>, bytes: usize) {
        let i = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[i] = Some(Slot {
            key: key.clone(),
            value,
            bytes,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, i);
        self.bytes += bytes;
        self.push_front(i);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Thread-safe, capacity-bounded (entries + bytes) LRU result cache.
///
/// Safe to share between engines: the engine name and table version in
/// [`CacheKey`] keep entries from different engines / snapshots apart.
pub struct ResultCache {
    inner: Mutex<Lru>,
    max_entries: usize,
    max_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ResultCache {
    pub fn new(config: &CacheConfig) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Lru::new()),
            max_entries: config.max_entries,
            max_bytes: config.max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Look up a key, refreshing its recency on a hit. Returns a shared
    /// handle — an `Arc` bump, so the mutex is never held across a deep
    /// copy of the result.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<ResultTable>> {
        let mut lru = self.inner.lock().expect("cache poisoned");
        match lru.map.get(key).copied() {
            Some(i) => {
                lru.touch(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&lru.slot(i).value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting from the cold end until
    /// both bounds hold again. Returns the number of entries evicted.
    /// Values larger than the whole byte budget are not admitted.
    pub fn insert(&self, key: CacheKey, value: Arc<ResultTable>) -> u64 {
        let bytes = value.approx_bytes();
        if bytes > self.max_bytes || self.max_entries == 0 {
            return 0;
        }
        let mut lru = self.inner.lock().expect("cache poisoned");
        if let Some(i) = lru.map.get(&key).copied() {
            // Same key computed twice (e.g. duplicate misses in one
            // racing batch): refresh value + recency in place. A larger
            // replacement can push the byte total over budget, so the
            // bounds are re-enforced just like on a fresh insert.
            lru.bytes = lru.bytes - lru.slot(i).bytes + bytes;
            let s = lru.slot_mut(i);
            s.value = value;
            s.bytes = bytes;
            lru.touch(i);
        } else {
            lru.insert_front(key, value, bytes);
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        let mut evicted = 0u64;
        while lru.len() > self.max_entries || lru.bytes > self.max_bytes {
            let tail = lru.tail;
            debug_assert_ne!(tail, NIL, "bounds exceeded with an empty list");
            lru.remove(tail);
            evicted += 1;
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Drop every entry recorded under `version` — called by engines
    /// after a mutation retires that snapshot. Purely a memory-reclaim
    /// courtesy: versioned keys already make such entries unreachable.
    pub fn invalidate_table_version(&self, version: u64) {
        let mut lru = self.inner.lock().expect("cache poisoned");
        let stale: Vec<usize> = lru
            .map
            .iter()
            .filter(|(k, _)| k.table_version == version)
            .map(|(_, &i)| i)
            .collect();
        let n = stale.len() as u64;
        for i in stale {
            lru.remove(i);
        }
        self.invalidations.fetch_add(n, Ordering::Relaxed);
    }

    pub fn clear(&self) {
        let mut lru = self.inner.lock().expect("cache poisoned");
        *lru = Lru::new();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("cache poisoned").bytes
    }

    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let lru = self.inner.lock().expect("cache poisoned");
            (lru.len(), lru.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{GroupSeries, XSpec, YSpec};
    use crate::value::Value;

    fn q(pred: Predicate) -> SelectQuery {
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_z("product")
            .with_predicate(pred)
    }

    fn rt(tag: i64) -> ResultTable {
        ResultTable {
            z_cols: vec!["product".into()],
            groups: vec![GroupSeries {
                key: vec![Value::str("chair")],
                xs: vec![Value::Int(tag)],
                ys: vec![vec![tag as f64]],
            }],
        }
    }

    fn key(tag: u64, pred: Predicate) -> CacheKey {
        CacheKey::new("test-engine", tag, &q(pred))
    }

    #[test]
    fn permuted_conjunctions_collide() {
        let a = Predicate::cat_eq("location", "US").and(Predicate::num_eq("year", 2015.0));
        let b = Predicate::num_eq("year", 2015.0).and(Predicate::cat_eq("location", "US"));
        assert_eq!(QueryKey::of(&q(a)), QueryKey::of(&q(b)));
    }

    #[test]
    fn duplicate_atoms_and_singleton_in_collapse() {
        let a = Predicate::cat_eq("p", "x").and(Predicate::cat_eq("p", "x"));
        let b = Predicate::cat_eq("p", "x");
        let c = Predicate::cat_in("p", vec!["x".into()]);
        assert_eq!(QueryKey::of(&q(a.clone())), QueryKey::of(&q(b.clone())));
        assert_eq!(QueryKey::of(&q(b)), QueryKey::of(&q(c)));
        let l1 = Predicate::cat_in("p", vec!["b".into(), "a".into(), "b".into()]);
        let l2 = Predicate::cat_in("p", vec!["a".into(), "b".into()]);
        assert_eq!(QueryKey::of(&q(l1)), QueryKey::of(&q(l2)));
    }

    #[test]
    fn disjunction_order_is_canonical_but_emptiness_is_kept() {
        let atom = |p: &str| Atom::CatEq {
            col: "product".into(),
            value: p.into(),
        };
        let a = Predicate::Or(vec![vec![atom("a")], vec![atom("b")]]);
        let b = Predicate::Or(vec![vec![atom("b")], vec![atom("a")]]);
        assert_eq!(QueryKey::of(&q(a)), QueryKey::of(&q(b)));
        // Or([[]]) is `true`, Or([]) matches nothing — they must differ.
        let tautology = Predicate::Or(vec![vec![]]);
        let nothing = Predicate::Or(vec![]);
        assert_eq!(
            QueryKey::of(&q(tautology)),
            QueryKey::of(&q(Predicate::True))
        );
        assert_ne!(QueryKey::of(&q(nothing)), QueryKey::of(&q(Predicate::True)));
        // A one-conjunct Or is the same filter as a plain And.
        let single_or = Predicate::Or(vec![vec![atom("a")]]);
        let plain_and = Predicate::cat_eq("product", "a");
        assert_eq!(QueryKey::of(&q(single_or)), QueryKey::of(&q(plain_and)));
    }

    #[test]
    fn output_shape_is_not_normalized_away() {
        // Y order and Z order change the result layout → different keys.
        let base = SelectQuery::new(
            XSpec::raw("year"),
            vec![YSpec::sum("sales"), YSpec::avg("profit")],
        );
        let swapped = SelectQuery::new(
            XSpec::raw("year"),
            vec![YSpec::avg("profit"), YSpec::sum("sales")],
        );
        assert_ne!(QueryKey::of(&base), QueryKey::of(&swapped));
        let z1 = base.clone().with_z("a").with_z("b");
        let z2 = base.clone().with_z("b").with_z("a");
        assert_ne!(QueryKey::of(&z1), QueryKey::of(&z2));
        // Bin width and agg function matter too.
        let binned = SelectQuery::new(XSpec::binned("year", 2.0), vec![YSpec::sum("sales")]);
        let raw = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        assert_ne!(QueryKey::of(&binned), QueryKey::of(&raw));
    }

    #[test]
    fn zero_signs_share_a_key() {
        let a = Predicate::num_eq("sales", 0.0);
        let b = Predicate::num_eq("sales", -0.0);
        assert_eq!(QueryKey::of(&q(a)), QueryKey::of(&q(b)));
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let cache = ResultCache::new(&CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
        });
        let k1 = key(1, Predicate::cat_eq("p", "a"));
        let k2 = key(1, Predicate::cat_eq("p", "b"));
        let k3 = key(1, Predicate::cat_eq("p", "c"));
        cache.insert(k1.clone(), Arc::new(rt(1)));
        cache.insert(k2.clone(), Arc::new(rt(2)));
        assert!(cache.get(&k1).is_some()); // k1 now most recent
        let evicted = cache.insert(k3.clone(), Arc::new(rt(3)));
        assert_eq!(evicted, 1);
        assert!(cache.get(&k2).is_none(), "k2 was coldest and must go");
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
    }

    #[test]
    fn byte_bound_is_enforced() {
        let one = rt(1).approx_bytes();
        let cache = ResultCache::new(&CacheConfig {
            max_entries: 100,
            max_bytes: one * 2,
        });
        for i in 0..10u64 {
            cache.insert(
                key(1, Predicate::num_eq("year", i as f64)),
                Arc::new(rt(i as i64)),
            );
        }
        assert!(cache.len() <= 2);
        assert!(cache.bytes() <= one * 2);
        assert!(cache.stats().evictions >= 8);
        // A value bigger than the whole budget is never admitted.
        let tiny = ResultCache::new(&CacheConfig {
            max_entries: 100,
            max_bytes: 1,
        });
        assert_eq!(tiny.insert(key(1, Predicate::True), Arc::new(rt(1))), 0);
        assert!(tiny.is_empty());
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let cache = ResultCache::new(&CacheConfig::default());
        let k = key(1, Predicate::True);
        cache.insert(k.clone(), Arc::new(rt(1)));
        cache.insert(k.clone(), Arc::new(rt(2)));
        assert_eq!(cache.len(), 1);
        assert_eq!(*cache.get(&k).unwrap(), rt(2));
    }

    #[test]
    fn refresh_with_larger_value_still_enforces_byte_bound() {
        let small = rt(1);
        let mut big = rt(2);
        big.groups[0].ys[0].extend(std::iter::repeat_n(0.0, 64));
        assert!(big.approx_bytes() > small.approx_bytes());
        let cache = ResultCache::new(&CacheConfig {
            max_entries: 100,
            max_bytes: small.approx_bytes() * 2 + big.approx_bytes() / 2,
        });
        let k1 = key(1, Predicate::cat_eq("p", "a"));
        let k2 = key(1, Predicate::cat_eq("p", "b"));
        cache.insert(k1.clone(), Arc::new(small.clone()));
        cache.insert(k2.clone(), Arc::new(small.clone()));
        // Refreshing k2 with a bigger value pushes the total over the
        // budget: the coldest entry (k1) must be evicted.
        let evicted = cache.insert(k2.clone(), Arc::new(big.clone()));
        assert_eq!(evicted, 1);
        assert!(cache.get(&k1).is_none());
        assert_eq!(*cache.get(&k2).unwrap(), big);
        assert!(cache.bytes() <= small.approx_bytes() * 2 + big.approx_bytes() / 2);
    }

    #[test]
    fn version_partition_and_invalidation() {
        let cache = ResultCache::new(&CacheConfig::default());
        let old = key(7, Predicate::True);
        let new = key(8, Predicate::True);
        cache.insert(old.clone(), Arc::new(rt(1)));
        cache.insert(new.clone(), Arc::new(rt(2)));
        assert_eq!(*cache.get(&old).unwrap(), rt(1));
        assert_eq!(*cache.get(&new).unwrap(), rt(2));
        cache.invalidate_table_version(7);
        assert!(cache.get(&old).is_none());
        assert_eq!(*cache.get(&new).unwrap(), rt(2));
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn stats_and_hit_rate() {
        let cache = ResultCache::new(&CacheConfig::default());
        let k = key(1, Predicate::True);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), Arc::new(rt(1)));
        assert!(cache.get(&k).is_some());
        assert!(cache.get(&k).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }
}
