//! Engine-level cross-query result cache with table-version invalidation.
//!
//! PR 1's shared-pass cache deduplicates identical group-bys *within* one
//! ZQL execution; this module promotes the idea to the engine itself so
//! that *cross-request and cross-execution* repeats — the defining access
//! pattern of interactive sessions re-exploring the same slices — skip
//! the scan entirely. `Database::run_request` consults a [`ResultCache`]
//! before executing each query and stores every freshly computed
//! [`ResultTable`] afterwards.
//!
//! # The version-key invalidation scheme
//!
//! Cache entries are keyed by [`CacheKey`] =
//! `(engine name, table version, canonical query)`:
//!
//! * **Table version.** Every [`crate::Table`] snapshot carries a
//!   process-unique version drawn from a global counter; every mutation
//!   (`append_rows` / `append_table`) draws a fresh, strictly larger one.
//!   `run_request` reads the version *before* executing, so an entry
//!   recorded under version `v` describes data at least as new as `v`.
//!   Because a table's current version only ever moves forward, a lookup
//!   can only see entries whose version equals the *current* one — stale
//!   entries are unreachable by construction, with no locks shared
//!   between readers and writers of the table. Eviction (or the engines'
//!   courtesy [`ResultCache::invalidate_table_version`] call on append)
//!   merely reclaims their memory.
//! * **Canonical query.** [`QueryKey`] normalizes a [`SelectQuery`] so
//!   that semantically identical queries collide: conjunction atoms are
//!   sorted and deduplicated, `IN` lists are sorted (singletons become
//!   equality atoms), disjunctions are sorted with tautologies collapsed,
//!   and float literals are keyed by normalized bit patterns. Output
//!   *shape* — the order of Y measures and of Z group-by columns — is
//!   preserved verbatim, because it determines the shape of the result.
//!
//! # Partial-result reuse (predicate subsumption)
//!
//! An exact-key miss is not necessarily a scan: a cached `(x, ys, z…)`
//! group-by computed under a *superset* predicate can answer many of the
//! queries an interactive session derives from it — tightening a filter,
//! drilling into one Z slice — by post-filtering its few thousand cached
//! groups instead of re-scanning millions of base rows.
//! [`ResultCache::lookup_derived`] finds such a source entry and runs the
//! derivation executor over it. A cached entry `C` can answer query `Q`
//! (same engine, table version, X column + bin, and Y measures in order)
//! when **all** of the following hold:
//!
//! * **Conjunctive predicates.** Both predicates canonicalize to
//!   conjunctions (`True` counts as the empty one). Disjunctions are
//!   declined: DNF subsumption is not worth the analysis cost here.
//! * **Superset predicate.** Every atom of `C` appears in `Q` (after
//!   canonicalization), so `Q`'s rows ⊆ `C`'s rows. The *residual* atoms
//!   (`Q` minus `C`) must each reference either a Z column of `C` — they
//!   become per-group key filters — or `C`'s **unbinned** X column — they
//!   become per-cell filters on the group's `xs`. A residual atom on a
//!   binned X is declined (bin lower bounds are not raw values), as is
//!   any atom on a column absent from the cached result.
//! * **Z order is preserved.** `Q.zs` must be `C.zs` with zero or more
//!   columns deleted *in place* (a subsequence): the kernel orders groups
//!   by `(z…, x)` lexicographically in Z-column order, so a filtered
//!   subsequence projection is already in `Q`'s result order, while a
//!   permutation would require a re-sort and is declined.
//! * **Dropped Z columns are pinned.** A column of `C.zs` missing from
//!   `Q.zs` (the per-Z-slice case) must be pinned to a single value by a
//!   residual equality atom (`CatEq` / `NumCmp Eq`); otherwise distinct
//!   groups would collapse onto one projected key, which would need a
//!   re-aggregation, not a filter. A pin admits one semantic value
//!   *class*, yet distinct stored values can share a class (`0.0` and
//!   `-0.0` float keys; two i64 above 2⁵³ with the same f64 image), so
//!   the executor additionally declines unless every surviving group
//!   carries the *identical* value in each dropped position — the exact
//!   condition under which the projection is injective, wherever the
//!   dropped column sits in Z order.
//!
//! Derived results are inserted under their own key (at the source
//! entry's cost — see below), so a repeated slice query becomes a pure
//! pointer-bump hit from then on.
//!
//! # Incremental view maintenance (append delta merging)
//!
//! An append bumps the table version, so every cached entry misses at
//! the new version — but for a *pure append*, the old result is not
//! wrong, merely incomplete. When an exact-key miss at version `v_new`
//! finds an entry for the same engine and [`QueryKey`] at an ancestor
//! version `v_old` ([`ResultCache::ivm_sources`]), and the table proves
//! the versions are connected by appends alone
//! ([`crate::Table::ancestor_rows`]), the engine scans **only** the
//! appended row range `[rows(v_old), rows(v_new))` — with the query's
//! own predicate applied as a residual — and group-merges the delta
//! aggregate into the cached result ([`ResultCache::try_ivm_merge`]).
//! The merged table is inserted under `v_new` like any fresh result, so
//! it both answers the next repeat exactly and serves as the ancestor
//! for the *next* tick: a live dashboard pays one bounded delta scan
//! per append instead of a full recompute.
//!
//! Delta-able vs declined, per measure and situation:
//!
//! | case                                   | handling                                    |
//! |----------------------------------------|---------------------------------------------|
//! | `SUM`, `COUNT`                         | delta-able: cell values add                 |
//! | `MIN`, `MAX`                           | delta-able: cell values fold (`min`/`max`)  |
//! | `AVG`                                  | delta-able via companion state: rewritten to `SUM` plus one trailing `COUNT(*)` ([`ivm_form`]), merged, then finalized as `sum / count` ([`ivm_finalize`]) |
//! | predicate on appended rows             | fine — the delta scan evaluates it          |
//! | group/x value unseen before the append | fine — the merge inserts the new cell       |
//! | no cached ancestor for the `QueryKey`  | decline: full recompute                     |
//! | lineage not provable (aged out of [`crate::Table`]'s bounded chain, or severed by recovery/`restore_version`) | decline: deletions or rebuilt dictionaries may hide behind the version gap |
//! | injected [`FaultPoint::IvmMerge`](crate::fault::FaultPoint) fault  | decline mid-merge: cache bit-untouched, silent fallback to a full scan |
//!
//! Merging finalized cells by *decoded* group values is sound across
//! appends because every dimension decode is table-state independent:
//! dictionary codes are append-stable, integer offsets/ranks decode to
//! the actual value, and bin codes decode to absolute bin lower bounds.
//! Bit-for-bit equality with a full recompute holds whenever cell sums
//! are exactly representable (the same condition the morsel merge
//! already documents); counts are exact integers either way.
//!
//! # Cost-based admission and eviction
//!
//! Caching a result that is cheaper to recompute than a hash probe only
//! pollutes the LRU, so [`ResultCache::insert`] takes the query's
//! estimated recompute cost in *scanned rows* and rejects entries below
//! [`CacheConfig::min_cost_rows`] (counted as `admission_rejects`).
//! Eviction weighs that same cost against recency and size
//! (GreedyDual-Size style): among the [`EVICT_SAMPLE`] coldest entries
//! the victim is the one with the lowest *retention value* — recompute
//! cost per byte held, with the cost of long-idle entries halved every
//! [`COST_AGE_HALF_LIFE`] cache operations since their last touch. A
//! big-but-cheap result (lots of bytes saving a small scan) goes before
//! a small-but-expensive one, and an entry whose expensive scan stopped
//! being asked for eventually ages out rather than squatting forever.
//!
//! # Bounds and concurrency
//!
//! The cache is a doubly-linked LRU bounded by **both** entry count and
//! approximate bytes ([`ResultTable::approx_bytes`]), guarded by one
//! mutex (operations touch a few pointers; the scan work they save is
//! orders of magnitude larger). Values are held as `Arc<ResultTable>`
//! end to end — lookups, derivations, and the `run_request` trait
//! boundary all share one allocation, so a warm hit is a pointer bump,
//! never a deep copy. Hit / derived-hit / miss / eviction / insertion /
//! admission counters are kept internally and also mirrored into each
//! engine's [`crate::ExecStats`] by `run_request`.

use crate::predicate::{Atom, CmpOp, Predicate};
use crate::query::{Agg, GroupSeries, ResultTable, SelectQuery};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Canonical query keys
// ---------------------------------------------------------------------

/// A predicate atom in canonical, hashable form. Float literals are
/// stored as normalized IEEE bits (`-0.0` folds onto `0.0`) so `Eq` and
/// `Hash` agree with predicate semantics.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum CanonAtom {
    CatEq { col: String, value: String },
    CatNeq { col: String, value: String },
    CatIn { col: String, values: Vec<String> },
    StrPrefix { col: String, prefix: String },
    NumCmp { col: String, op: CmpOp, bits: u64 },
    NumBetween { col: String, lo: u64, hi: u64 },
}

impl CanonAtom {
    fn col(&self) -> &str {
        match self {
            CanonAtom::CatEq { col, .. }
            | CanonAtom::CatNeq { col, .. }
            | CanonAtom::CatIn { col, .. }
            | CanonAtom::StrPrefix { col, .. }
            | CanonAtom::NumCmp { col, .. }
            | CanonAtom::NumBetween { col, .. } => col,
        }
    }

    /// Whether this atom restricts its column to (at most) one value —
    /// the requirement for dropping a pinned Z column out of the key.
    fn pins_single_value(&self) -> bool {
        matches!(
            self,
            CanonAtom::CatEq { .. } | CanonAtom::NumCmp { op: CmpOp::Eq, .. }
        )
    }

    /// Evaluate the atom against a materialized group-key / X value.
    /// `None` means the value's type does not fit the atom (direct
    /// execution would have rejected the query) — the caller must
    /// decline the derivation rather than guess.
    fn matches_value(&self, v: &Value) -> Option<bool> {
        match self {
            CanonAtom::CatEq { value, .. } => match v {
                Value::Str(s) => Some(s == value),
                _ => None,
            },
            CanonAtom::CatNeq { value, .. } => match v {
                Value::Str(s) => Some(s != value),
                _ => None,
            },
            CanonAtom::CatIn { values, .. } => match v {
                // `values` is sorted by canonicalization.
                Value::Str(s) => Some(values.binary_search(s).is_ok()),
                _ => None,
            },
            CanonAtom::StrPrefix { prefix, .. } => match v {
                Value::Str(s) => Some(s.starts_with(prefix.as_str())),
                _ => None,
            },
            CanonAtom::NumCmp { op, bits, .. } => {
                v.as_f64().map(|x| op.eval_f64(x, f64::from_bits(*bits)))
            }
            CanonAtom::NumBetween { lo, hi, .. } => v
                .as_f64()
                .map(|x| x >= f64::from_bits(*lo) && x <= f64::from_bits(*hi)),
        }
    }
}

fn f64_bits(v: f64) -> u64 {
    // -0.0 and 0.0 compare equal in every predicate, so they must share
    // a key.
    if v == 0.0 {
        0f64.to_bits()
    } else {
        v.to_bits()
    }
}

fn canon_atom(a: &Atom) -> CanonAtom {
    match a {
        Atom::CatEq { col, value } => CanonAtom::CatEq {
            col: col.clone(),
            value: value.clone(),
        },
        Atom::CatNeq { col, value } => CanonAtom::CatNeq {
            col: col.clone(),
            value: value.clone(),
        },
        Atom::CatIn { col, values } => {
            let mut values = values.clone();
            values.sort();
            values.dedup();
            if values.len() == 1 {
                // `IN ('a')` ≡ `= 'a'`.
                CanonAtom::CatEq {
                    col: col.clone(),
                    value: values.pop().unwrap(),
                }
            } else {
                CanonAtom::CatIn {
                    col: col.clone(),
                    values,
                }
            }
        }
        Atom::StrPrefix { col, prefix } => CanonAtom::StrPrefix {
            col: col.clone(),
            prefix: prefix.clone(),
        },
        Atom::NumCmp { col, op, value } => CanonAtom::NumCmp {
            col: col.clone(),
            op: *op,
            bits: f64_bits(*value),
        },
        Atom::NumBetween { col, lo, hi } => CanonAtom::NumBetween {
            col: col.clone(),
            lo: f64_bits(*lo),
            hi: f64_bits(*hi),
        },
    }
}

/// Sorted, deduplicated conjunction.
fn canon_conj(atoms: &[Atom]) -> Vec<CanonAtom> {
    let mut out: Vec<CanonAtom> = atoms.iter().map(canon_atom).collect();
    out.sort();
    out.dedup();
    out
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum CanonPred {
    True,
    And(Vec<CanonAtom>),
    /// Note: an *empty* disjunction matches nothing and stays `Or([])`.
    Or(Vec<Vec<CanonAtom>>),
}

fn canon_pred(p: &Predicate) -> CanonPred {
    match p {
        Predicate::True => CanonPred::True,
        Predicate::And(atoms) => {
            let c = canon_conj(atoms);
            if c.is_empty() {
                CanonPred::True
            } else {
                CanonPred::And(c)
            }
        }
        Predicate::Or(disj) => {
            let mut conjs: Vec<Vec<CanonAtom>> = Vec::with_capacity(disj.len());
            for conj in disj {
                let c = canon_conj(conj);
                if c.is_empty() {
                    // An empty conjunct is `true`, so the whole
                    // disjunction is — same rule as `Predicate::is_true`.
                    return CanonPred::True;
                }
                conjs.push(c);
            }
            conjs.sort();
            conjs.dedup();
            if conjs.len() == 1 {
                // A one-conjunct disjunction is the same filter as a
                // plain conjunction.
                CanonPred::And(conjs.into_iter().next().unwrap())
            } else {
                CanonPred::Or(conjs)
            }
        }
    }
}

/// Canonical, hashable identity of a [`SelectQuery`].
///
/// Two queries map to the same `QueryKey` exactly when they are
/// guaranteed to produce identical [`ResultTable`]s on identical data:
/// predicate normalization folds semantically equal filters together,
/// while the result-shaping parts (X column and bin, Y measures in
/// order, Z columns in order) are preserved verbatim.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    x_col: String,
    x_bin: Option<u64>,
    ys: Vec<(String, Agg)>,
    zs: Vec<String>,
    pred: CanonPred,
}

impl QueryKey {
    pub fn of(q: &SelectQuery) -> QueryKey {
        QueryKey {
            x_col: q.x.col.clone(),
            x_bin: q.x.bin.map(f64_bits),
            ys: q.ys.iter().map(|y| (y.col.clone(), y.agg)).collect(),
            zs: q.zs.clone(),
            pred: canon_pred(&q.predicate),
        }
    }
}

/// Full cache key: which engine produced the result, over which table
/// snapshot, for which canonical query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub engine: &'static str,
    pub table_version: u64,
    pub query: QueryKey,
}

impl CacheKey {
    pub fn new(engine: &'static str, table_version: u64, query: &SelectQuery) -> CacheKey {
        CacheKey {
            engine,
            table_version,
            query: QueryKey::of(query),
        }
    }
}

/// The parts of a [`CacheKey`] every derivation source must share with
/// a missed query (same engine, snapshot, X axis, and Y measures).
/// [`ResultCache::lookup_derived`] walks only the miss's own family via
/// a secondary index instead of scanning the whole key map per miss.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct FamilyKey {
    engine: &'static str,
    table_version: u64,
    x_col: String,
    x_bin: Option<u64>,
    ys: Vec<(String, Agg)>,
}

impl FamilyKey {
    fn of(key: &CacheKey) -> FamilyKey {
        FamilyKey {
            engine: key.engine,
            table_version: key.table_version,
            x_col: key.query.x_col.clone(),
            x_bin: key.query.x_bin,
            ys: key.query.ys.clone(),
        }
    }
}

/// Index key for IVM ancestor lookups: every cached version of one
/// engine's result for one canonical query. Unlike [`FamilyKey`] the
/// table version is deliberately *absent* — crossing versions is the
/// whole point.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct IvmFamilyKey {
    engine: &'static str,
    query: QueryKey,
}

impl IvmFamilyKey {
    fn of(key: &CacheKey) -> IvmFamilyKey {
        IvmFamilyKey {
            engine: key.engine,
            query: key.query.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// Predicate subsumption and result derivation
// ---------------------------------------------------------------------

/// The conjunction view of a canonical predicate (`True` = empty).
/// Disjunctions have no cheap subsumption story and return `None`.
fn conj_atoms(p: &CanonPred) -> Option<&[CanonAtom]> {
    match p {
        CanonPred::True => Some(&[]),
        CanonPred::And(atoms) => Some(atoms),
        CanonPred::Or(_) => None,
    }
}

/// How to turn one cached superset result into the answer of a
/// subsumed query, produced by [`derive_plan`] and executed by
/// [`apply_plan`]. See the module docs for the qualification rules.
struct DerivePlan {
    /// Positions in the cached key that survive into the derived key,
    /// in (preserved) order.
    keep_z: Vec<usize>,
    /// `(cached key position, residual atom)` group filters.
    key_filters: Vec<(usize, CanonAtom)>,
    /// Residual atoms on the (raw) X column, applied per cell.
    x_filters: Vec<CanonAtom>,
    /// Positions projected away (each pinned by a residual equality);
    /// [`apply_plan`] verifies every surviving group agrees on their
    /// exact values before dropping them.
    dropped: Vec<usize>,
}

/// Decide whether `cached` subsumes `want`, and how to derive the
/// answer. Cheap: compares canonical keys only, never touches data.
fn derive_plan(cached: &QueryKey, want: &QueryKey) -> Option<DerivePlan> {
    if cached.x_col != want.x_col || cached.x_bin != want.x_bin || cached.ys != want.ys {
        return None;
    }
    let catoms = conj_atoms(&cached.pred)?;
    let watoms = conj_atoms(&want.pred)?;
    // Superset check: every cached atom constrains `want` too.
    if !catoms.iter().all(|a| watoms.contains(a)) {
        return None;
    }
    let residual: Vec<&CanonAtom> = watoms.iter().filter(|a| !catoms.contains(a)).collect();
    // `want.zs` must be a *positional subsequence* of `cached.zs`; the
    // deleted columns are the per-Z-slice drops.
    let mut keep_z = Vec::with_capacity(want.zs.len());
    let mut dropped: Vec<usize> = Vec::new();
    let mut wi = 0;
    for (ci, col) in cached.zs.iter().enumerate() {
        if wi < want.zs.len() && *col == want.zs[wi] {
            keep_z.push(ci);
            wi += 1;
        } else {
            dropped.push(ci);
        }
    }
    if wi != want.zs.len() {
        return None;
    }
    if residual.is_empty() && dropped.is_empty() {
        // Identical queries are the exact-hit path's job.
        return None;
    }
    // Route each residual atom to the value it can be checked against.
    let mut key_filters: Vec<(usize, CanonAtom)> = Vec::new();
    let mut x_filters: Vec<CanonAtom> = Vec::new();
    for a in residual {
        let col = a.col();
        let mut routed = false;
        for (ci, zc) in cached.zs.iter().enumerate() {
            if zc == col {
                key_filters.push((ci, a.clone()));
                routed = true;
            }
        }
        if col == cached.x_col {
            if cached.x_bin.is_some() {
                // Bin lower bounds are not the raw values the predicate
                // constrains; a bin could match only partially.
                return None;
            }
            x_filters.push(a.clone());
            routed = true;
        }
        if !routed {
            // The atom's column is not materialized in the cached
            // result; only a base-table scan can evaluate it.
            return None;
        }
    }
    // Every dropped Z column must be pinned to a single value, or the
    // projection would merge groups (a re-aggregation, not a filter).
    for &ci in &dropped {
        if !key_filters
            .iter()
            .any(|(i, a)| *i == ci && a.pins_single_value())
        {
            return None;
        }
    }
    Some(DerivePlan {
        keep_z,
        key_filters,
        x_filters,
        dropped,
    })
}

/// Execute a [`DerivePlan`] over the cached source result. Returns
/// `None` when the derivation must be declined at data level: a type
/// mismatch, or surviving groups that *disagree* on a dropped column's
/// exact value. The latter is the merge guard — a pin admits one
/// semantic value class, but distinct stored values can share a class
/// (`0.0`/`-0.0` float keys, two i64 above 2⁵³ with one f64 image);
/// direct execution would merge such groups, so a filter cannot answer
/// the query. Requiring the dropped values to be *identical* across
/// survivors makes the projection injective (full keys are distinct by
/// the kernel's grouping), wherever the dropped column sits in Z order.
fn apply_plan(plan: &DerivePlan, src: &ResultTable, z_cols: Vec<String>) -> Option<ResultTable> {
    let mut groups: Vec<GroupSeries> = Vec::new();
    let mut pinned_values: Option<Vec<&Value>> = None;
    'group: for g in &src.groups {
        for (zi, atom) in &plan.key_filters {
            if !atom.matches_value(&g.key[*zi])? {
                continue 'group;
            }
        }
        let mut out = if plan.x_filters.is_empty() {
            g.clone()
        } else {
            let mut keep: Vec<usize> = Vec::with_capacity(g.xs.len());
            for (i, x) in g.xs.iter().enumerate() {
                let mut m = true;
                for atom in &plan.x_filters {
                    if !atom.matches_value(x)? {
                        m = false;
                        break;
                    }
                }
                if m {
                    keep.push(i);
                }
            }
            if keep.is_empty() {
                // A group whose every row is filtered out does not
                // appear in a direct execution either.
                continue 'group;
            }
            g.select_cells(&keep)
        };
        // The merge guard: every survivor must carry the same exact
        // values in the dropped positions as the first survivor did.
        match &pinned_values {
            None => pinned_values = Some(plan.dropped.iter().map(|&i| &g.key[i]).collect()),
            Some(first) => {
                if plan
                    .dropped
                    .iter()
                    .zip(first.iter())
                    .any(|(&i, &v)| g.key[i] != *v)
                {
                    return None;
                }
            }
        }
        out.key = plan.keep_z.iter().map(|&i| g.key[i].clone()).collect();
        groups.push(out);
    }
    Some(ResultTable { z_cols, groups })
}

// ---------------------------------------------------------------------
// Incremental view maintenance: delta merging
// ---------------------------------------------------------------------

/// The delta-mergeable *state* form of a query (see the module docs'
/// IVM section): `SUM`/`COUNT`/`MIN`/`MAX` merge as-is, while `AVG`
/// needs its numerator and denominator kept separately.
pub struct IvmForm {
    /// The query whose result is the mergeable state: each `AVG`
    /// measure rewritten to `SUM`, plus one trailing `COUNT(*)`
    /// companion — or the user query verbatim when no `AVG` is present.
    pub state_query: SelectQuery,
    /// Whether `state_query` differs from the user query; the merged
    /// state then needs [`ivm_finalize`] before it is user-visible.
    pub augmented: bool,
}

/// Compute the IVM state form of `q`, or `None` when some measure is
/// not delta-mergeable. All current aggregates are; the exhaustive
/// match makes a future non-distributive aggregate decline here rather
/// than merge wrongly.
pub fn ivm_form(q: &SelectQuery) -> Option<IvmForm> {
    let mut has_avg = false;
    for y in &q.ys {
        match y.agg {
            Agg::Sum | Agg::Count | Agg::Min | Agg::Max => {}
            Agg::Avg => has_avg = true,
        }
    }
    if !has_avg {
        return Some(IvmForm {
            state_query: q.clone(),
            augmented: false,
        });
    }
    let mut state_query = q.clone();
    for y in &mut state_query.ys {
        if y.agg == Agg::Avg {
            y.agg = Agg::Sum;
        }
    }
    // One companion is enough for every AVG measure: the kernel keeps a
    // single per-cell row count, shared by all of them.
    state_query
        .ys
        .push(crate::query::YSpec::new("*", Agg::Count));
    Some(IvmForm {
        state_query,
        augmented: true,
    })
}

/// Turn a merged *state* table back into the user-visible result: each
/// `AVG` position becomes `state_sum / count` (the trailing `COUNT(*)`
/// companion), and the companion column is dropped. The division is the
/// same `sum / n` the kernel's finalize performs, so on exact sums the
/// result is bit-identical to a full recompute.
pub fn ivm_finalize(state: &ResultTable, user: &SelectQuery) -> ResultTable {
    let n_user = user.ys.len();
    let groups = state
        .groups
        .iter()
        .map(|g| {
            let counts = &g.ys[n_user];
            let ys = user
                .ys
                .iter()
                .enumerate()
                .map(|(k, y)| {
                    if y.agg == Agg::Avg {
                        g.ys[k].iter().zip(counts).map(|(&s, &n)| s / n).collect()
                    } else {
                        g.ys[k].clone()
                    }
                })
                .collect();
            GroupSeries {
                key: g.key.clone(),
                xs: g.xs.clone(),
                ys,
            }
        })
        .collect();
    ResultTable {
        z_cols: state.z_cols.clone(),
        groups,
    }
}

/// Merge one cell's measures; `Min`/`Max` mirror the kernel's partial
/// merge (`<` / `>` folds), `Sum`/`Count` add.
fn merge_cell(
    aggs: &[Agg],
    out: &mut [Vec<f64>],
    a: &GroupSeries,
    i: usize,
    b: &GroupSeries,
    j: usize,
) {
    for (k, series) in out.iter_mut().enumerate() {
        let (x, y) = (a.ys[k][i], b.ys[k][j]);
        series.push(match aggs[k] {
            Agg::Sum | Agg::Count => x + y,
            Agg::Min => {
                if y < x {
                    y
                } else {
                    x
                }
            }
            Agg::Max => {
                if y > x {
                    y
                } else {
                    x
                }
            }
            Agg::Avg => unreachable!("IVM state queries carry no AVG measure"),
        });
    }
}

/// Copy one side's cell unchanged (a group/x value the other side never
/// saw — every measure's identity is "the other range had no rows").
fn copy_cell(out: &mut [Vec<f64>], g: &GroupSeries, i: usize) {
    for (k, series) in out.iter_mut().enumerate() {
        series.push(g.ys[k][i]);
    }
}

/// Merge two same-shape group series sharing a key: sorted two-pointer
/// walk over the x cells (both sides come out of finalize sorted by
/// decoded value).
fn merge_group(a: &GroupSeries, b: &GroupSeries, aggs: &[Agg]) -> GroupSeries {
    let cap = a.xs.len() + b.xs.len();
    let mut xs: Vec<Value> = Vec::with_capacity(cap);
    let mut ys: Vec<Vec<f64>> = vec![Vec::with_capacity(cap); aggs.len()];
    let (mut i, mut j) = (0, 0);
    while i < a.xs.len() && j < b.xs.len() {
        match a.xs[i].cmp(&b.xs[j]) {
            std::cmp::Ordering::Less => {
                xs.push(a.xs[i].clone());
                copy_cell(&mut ys, a, i);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                xs.push(b.xs[j].clone());
                copy_cell(&mut ys, b, j);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                xs.push(a.xs[i].clone());
                merge_cell(aggs, &mut ys, a, i, b, j);
                i += 1;
                j += 1;
            }
        }
    }
    while i < a.xs.len() {
        xs.push(a.xs[i].clone());
        copy_cell(&mut ys, a, i);
        i += 1;
    }
    while j < b.xs.len() {
        xs.push(b.xs[j].clone());
        copy_cell(&mut ys, b, j);
        j += 1;
    }
    GroupSeries {
        key: a.key.clone(),
        xs,
        ys,
    }
}

/// Group-wise merge of a delta aggregate into a cached ancestor state.
/// Both inputs come out of the kernel's finalize sorted by decoded key
/// then x, so a two-pointer merge preserves result order. `aggs` is the
/// *state* query's measure list (no `AVG` — see [`ivm_form`]).
fn merge_ivm_state(cached: &ResultTable, delta: &ResultTable, aggs: &[Agg]) -> ResultTable {
    let mut groups: Vec<GroupSeries> = Vec::with_capacity(cached.groups.len() + delta.groups.len());
    let (mut i, mut j) = (0, 0);
    while i < cached.groups.len() && j < delta.groups.len() {
        match cached.groups[i].key.cmp(&delta.groups[j].key) {
            std::cmp::Ordering::Less => {
                groups.push(cached.groups[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                groups.push(delta.groups[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                groups.push(merge_group(&cached.groups[i], &delta.groups[j], aggs));
                i += 1;
                j += 1;
            }
        }
    }
    groups.extend(cached.groups[i..].iter().cloned());
    groups.extend(delta.groups[j..].iter().cloned());
    ResultTable {
        z_cols: cached.z_cols.clone(),
        groups,
    }
}

/// An IVM merge candidate: a cached state entry for the same engine and
/// canonical query at an older table version.
pub struct IvmSource {
    /// The table version the cached state describes; the caller must
    /// prove `[version, v_new]` is pure-append via
    /// [`crate::Table::ancestor_rows`] before scanning a delta.
    pub version: u64,
    pub state: Arc<ResultTable>,
    /// The source entry's recompute cost in rows; the merged result is
    /// re-inserted at this plus the delta's scanned rows.
    pub cost: u64,
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Capacity bounds for a [`ResultCache`]. A zero in `max_entries` or
/// `max_bytes` disables caching entirely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    pub max_entries: usize,
    pub max_bytes: usize,
    /// Cost-based admission floor: results whose recompute cost (in
    /// scanned rows) is below this are not worth a cache slot — they
    /// cost about as much to recompute as to probe for. `0` admits
    /// everything.
    pub min_cost_rows: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 1024,
            max_bytes: 64 << 20, // 64 MiB of aggregated series
            // Scanning a few cache lines of rows with a compiled
            // predicate costs roughly what the hash probe + LRU
            // bookkeeping does.
            min_cost_rows: 64,
        }
    }
}

impl CacheConfig {
    pub fn disabled() -> Self {
        CacheConfig {
            max_entries: 0,
            max_bytes: 0,
            min_cost_rows: 0,
        }
    }

    /// Default bounds with cost-based admission off — for tests and
    /// workloads over tables small enough that *every* result would
    /// otherwise be rejected as trivially recomputable.
    pub fn admit_all() -> Self {
        CacheConfig {
            min_cost_rows: 0,
            ..Default::default()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.max_entries > 0 && self.max_bytes > 0
    }
}

/// Point-in-time cache counters (monotonic except `entries`/`bytes`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    /// Exact-key misses answered by deriving from a cached superset
    /// result (no scan). Always ≤ `misses`: the exact probe that
    /// preceded the derivation still counts as a miss.
    pub derived_hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub invalidations: u64,
    /// Exact-key misses answered by merging an appended-range delta
    /// into a cached ancestor-version result (see the module docs' IVM
    /// section). Like `derived_hits`, always ≤ `misses`.
    pub ivm_hits: u64,
    /// IVM merges abandoned mid-flight by an injected
    /// [`FaultPoint::IvmMerge`](crate::fault::FaultPoint) fault — the
    /// query silently fell back to a full recompute, cache state
    /// bit-untouched. Always 0 outside chaos runs.
    pub ivm_merge_faults: u64,
    /// Fresh results rejected by cost-based admission.
    pub admission_rejects: u64,
    /// Inserts dropped by injected cache faults ([`crate::fault`]) —
    /// always 0 outside chaos runs.
    pub insert_faults: u64,
    /// Derivations abandoned mid-plan by injected cache faults — the
    /// probe reports a plain miss and the query falls back to a real
    /// scan, cache state bit-untouched. Always 0 outside chaos runs.
    pub derive_faults: u64,
    /// Times a poisoned cache lock forced an LRU rebuild (a panic
    /// mid-mutation can tear the intrusive list, so the store restarts
    /// empty rather than serve corrupt bookkeeping).
    pub poison_rebuilds: u64,
    pub entries: usize,
    pub bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of lookups answered without scanning a base row —
    /// exact hits plus derived hits (0 when none were made).
    pub fn scan_free_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.derived_hits) as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------
// The LRU store
// ---------------------------------------------------------------------

const NIL: usize = usize::MAX;

/// How many cold-end entries the evictor weighs against each other; the
/// one with the lowest retention value (aged cost per byte) goes.
pub const EVICT_SAMPLE: usize = 4;

/// Cache operations (inserts + touches) an entry can sit idle before its
/// recompute cost is halved for eviction purposes — and halved again per
/// further interval. Keeps a once-expensive result from squatting in the
/// cache long after the workload moved on.
pub const COST_AGE_HALF_LIFE: u64 = 64;

struct Slot {
    key: CacheKey,
    value: Arc<ResultTable>,
    bytes: usize,
    /// Estimated recompute cost in scanned rows (what evicting this
    /// entry would make a future miss pay again).
    cost: u64,
    /// Logical clock value ([`Lru::tick`]) of the last insert/touch —
    /// ages the cost when the entry is weighed for eviction.
    last_touch: u64,
    prev: usize,
    next: usize,
}

/// Slab-backed doubly-linked LRU list + key index. Head = most recent.
#[derive(Default)]
struct Lru {
    map: HashMap<CacheKey, usize>,
    /// Derivation-family index: slots sharing `(engine, version, x, ys)`,
    /// the candidates `lookup_derived` has to consider for a miss.
    families: HashMap<FamilyKey, Vec<usize>>,
    /// IVM-family index: slots sharing `(engine, canonical query)`
    /// across *all* table versions — the ancestor candidates
    /// `ivm_sources` consults on a version-bumped miss.
    ivm_families: HashMap<IvmFamilyKey, Vec<usize>>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    /// Logical clock: one step per insert/touch. Drives cost aging.
    tick: u64,
}

impl Lru {
    fn new() -> Self {
        Lru {
            head: NIL,
            tail: NIL,
            ..Default::default()
        }
    }

    fn slot(&self, i: usize) -> &Slot {
        self.slots[i].as_ref().expect("live slot")
    }

    fn slot_mut(&mut self, i: usize) -> &mut Slot {
        self.slots[i].as_mut().expect("live slot")
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slot(i);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        let old_head = self.head;
        {
            let s = self.slot_mut(i);
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slot_mut(old_head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        self.tick += 1;
        let now = self.tick;
        self.slot_mut(i).last_touch = now;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Remove slot `i` entirely, returning its freed byte count.
    fn remove(&mut self, i: usize) -> usize {
        self.unlink(i);
        let slot = self.slots[i].take().expect("live slot");
        self.map.remove(&slot.key);
        let family = FamilyKey::of(&slot.key);
        if let Some(members) = self.families.get_mut(&family) {
            members.retain(|&j| j != i);
            if members.is_empty() {
                self.families.remove(&family);
            }
        }
        let ivm_family = IvmFamilyKey::of(&slot.key);
        if let Some(members) = self.ivm_families.get_mut(&ivm_family) {
            members.retain(|&j| j != i);
            if members.is_empty() {
                self.ivm_families.remove(&ivm_family);
            }
        }
        self.free.push(i);
        self.bytes -= slot.bytes;
        slot.bytes
    }

    fn insert_front(&mut self, key: CacheKey, value: Arc<ResultTable>, bytes: usize, cost: u64) {
        let i = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.families
            .entry(FamilyKey::of(&key))
            .or_default()
            .push(i);
        self.ivm_families
            .entry(IvmFamilyKey::of(&key))
            .or_default()
            .push(i);
        self.tick += 1;
        self.slots[i] = Some(Slot {
            key: key.clone(),
            value,
            bytes,
            cost,
            last_touch: self.tick,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, i);
        self.bytes += bytes;
        self.push_front(i);
    }

    /// Retention value of slot `i`: recompute cost per byte held, with
    /// the cost halved for every [`COST_AGE_HALF_LIFE`] cache operations
    /// the entry has sat untouched. Low value = good eviction victim
    /// (big but cheap, or expensive long ago).
    fn retention(&self, i: usize) -> f64 {
        let s = self.slot(i);
        let idle = self.tick.saturating_sub(s.last_touch);
        let aged_cost = s.cost >> (idle / COST_AGE_HALF_LIFE).min(63);
        aged_cost as f64 / s.bytes.max(1) as f64
    }

    /// Evict one entry: the lowest retention value (aged cost per byte)
    /// among the up-to-[`EVICT_SAMPLE`] coldest (ties keep the colder
    /// one), never the protected slot (the one just inserted or
    /// refreshed).
    fn evict_one(&mut self, protect: usize) {
        let mut victim = NIL;
        let mut victim_score = f64::INFINITY;
        let mut i = self.tail;
        let mut sampled = 0;
        while i != NIL && sampled < EVICT_SAMPLE {
            if i != protect {
                let score = self.retention(i);
                if score < victim_score {
                    victim = i;
                    victim_score = score;
                }
                sampled += 1;
            }
            i = self.slot(i).prev;
        }
        debug_assert_ne!(victim, NIL, "bounds exceeded with nothing evictable");
        self.remove(victim);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Thread-safe, capacity-bounded (entries + bytes) LRU result cache.
///
/// Safe to share between engines: the engine name and table version in
/// [`CacheKey`] keep entries from different engines / snapshots apart.
pub struct ResultCache {
    inner: Mutex<Lru>,
    max_entries: usize,
    max_bytes: usize,
    min_cost_rows: u64,
    /// Injected cache-insert failures ([`crate::fault`]); disabled (a
    /// single branch per insert) outside chaos runs.
    fault: crate::fault::FaultSpec,
    /// Monotonic insert attempt counter — the deterministic index fed
    /// to the fault hash.
    insert_seq: AtomicU64,
    /// Monotonic derivation attempt counter — the index for injected
    /// [`FaultPoint::CacheDerive`](crate::fault::FaultPoint) failures.
    derive_seq: AtomicU64,
    /// Monotonic IVM merge attempt counter — the index for injected
    /// [`FaultPoint::IvmMerge`](crate::fault::FaultPoint) failures.
    ivm_seq: AtomicU64,
    hits: AtomicU64,
    derived_hits: AtomicU64,
    ivm_hits: AtomicU64,
    ivm_merge_faults: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    admission_rejects: AtomicU64,
    insert_faults: AtomicU64,
    derive_faults: AtomicU64,
    poison_rebuilds: AtomicU64,
}

/// What [`ResultCache::insert`] did with the offered entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// `false` when cost-based admission (or an oversized value)
    /// rejected the entry.
    pub admitted: bool,
    /// Entries evicted to make room.
    pub evicted: u64,
}

/// A successful [`ResultCache::lookup_derived`]: the derived result
/// plus the recompute cost inherited from its source entry. The result
/// is **not** yet cached under its own key — the caller re-inserts it
/// (at `cost`) once its request commits, so a request aborted after the
/// probe (e.g. a cancelled batch) leaves the cache untouched.
pub struct DerivedHit {
    pub result: Arc<ResultTable>,
    /// The source entry's recompute cost in rows — the weight to use
    /// when re-inserting the derived result.
    pub cost: u64,
}

impl ResultCache {
    pub fn new(config: &CacheConfig) -> ResultCache {
        ResultCache::with_fault(config, crate::fault::FaultSpec::disabled())
    }

    /// [`ResultCache::new`] with fault injection armed — how the engine
    /// builders thread `ParallelConfig::fault` through so a chaos run
    /// exercises [`FaultPoint::CacheInsert`](crate::fault::FaultPoint)
    /// without widening `CacheConfig`.
    pub fn with_fault(config: &CacheConfig, fault: crate::fault::FaultSpec) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Lru::new()),
            max_entries: config.max_entries,
            max_bytes: config.max_bytes,
            min_cost_rows: config.min_cost_rows,
            fault,
            insert_seq: AtomicU64::new(0),
            derive_seq: AtomicU64::new(0),
            ivm_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            derived_hits: AtomicU64::new(0),
            ivm_hits: AtomicU64::new(0),
            ivm_merge_faults: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            admission_rejects: AtomicU64::new(0),
            insert_faults: AtomicU64::new(0),
            derive_faults: AtomicU64::new(0),
            poison_rebuilds: AtomicU64::new(0),
        }
    }

    /// Lock the LRU, rebuilding it empty if the lock is poisoned. A
    /// panic while a guard is held can leave the intrusive list
    /// half-linked, so (unlike the engines' `Arc`-swap table locks,
    /// which recover in place) the only safe recovery here is to start
    /// from an empty store — a cache may always forget, never lie.
    fn lock_lru(&self) -> std::sync::MutexGuard<'_, Lru> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.inner.clear_poison();
                let mut guard = poisoned.into_inner();
                *guard = Lru::new();
                self.poison_rebuilds.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Poison the cache lock by panicking while holding it — the chaos
    /// suite's hook for proving [`ResultCache::lock_lru`] recovery.
    #[doc(hidden)]
    pub fn poison_for_chaos(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            panic!(
                "{} deliberate cache-lock poisoning",
                crate::fault::PANIC_MARKER
            );
        }));
    }

    /// Look up a key, refreshing its recency on a hit. Returns a shared
    /// handle — an `Arc` bump, so the mutex is never held across a deep
    /// copy of the result.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<ResultTable>> {
        let mut lru = self.lock_lru();
        match lru.map.get(key).copied() {
            Some(i) => {
                lru.touch(i);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&lru.slot(i).value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Answer an exact-key miss by deriving from a cached superset
    /// entry (predicate subsumption / per-Z-slice extraction — see the
    /// module docs). The derived result is returned together with its
    /// source's recompute cost but **not** inserted here: the caller
    /// re-inserts it under the miss's key once its request commits
    /// (`Database::run_request_ctx` does, so the next identical query
    /// is a plain hit) — deferring the insert keeps a cancelled batch
    /// from mutating the cache after a successful probe. Candidate
    /// selection and the group filter touch cached aggregates only —
    /// zero base rows are scanned either way.
    pub fn lookup_derived(&self, key: &CacheKey) -> Option<DerivedHit> {
        // Plans are decided under the lock (key comparisons only, and
        // only over the miss's derivation family — entries sharing
        // engine, version, X and Ys — via the secondary index); the
        // actual group filtering runs outside it on shared `Arc`s.
        let family = FamilyKey::of(key);
        let mut candidates: Vec<(DerivePlan, Arc<ResultTable>, u64, usize)> = {
            let lru = self.lock_lru();
            let members = lru.families.get(&family)?;
            members
                .iter()
                .map(|&i| lru.slot(i))
                .filter(|slot| slot.key.query != key.query)
                .filter_map(|slot| {
                    derive_plan(&slot.key.query, &key.query)
                        .map(|plan| (plan, Arc::clone(&slot.value), slot.cost, slot.bytes))
                })
                .collect()
        };
        // Injected mid-derive failure: the probe found derivable
        // sources but abandons the plan and reports a plain miss, so
        // the query falls back to a real scan. Nothing was touched
        // under the lock beyond reads — the cache is bit-identical to
        // before the probe. Indexed by a monotonic attempt counter so
        // a chaos run's decision trail is replayable; the counter only
        // advances when there was a plan to abandon, keeping the index
        // stream independent of unrelated cache traffic.
        if !candidates.is_empty() {
            let seq = self.derive_seq.fetch_add(1, Ordering::Relaxed);
            if self
                .fault
                .fires(crate::fault::FaultPoint::CacheDerive, seq, 0)
            {
                self.derive_faults.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        // Smallest source first: least filter work, and ties in
        // derivability always exist (any superset of a superset works).
        candidates.sort_by_key(|(_, _, _, bytes)| *bytes);
        for (plan, src, cost, _) in candidates {
            if let Some(rt) = apply_plan(&plan, &src, key.query.zs.clone()) {
                self.derived_hits.fetch_add(1, Ordering::Relaxed);
                // The derived entry stands in for the scan its source
                // saved: if both are evicted, a future miss re-pays
                // `cost`, so that is its re-insertion weight too.
                return Some(DerivedHit {
                    result: Arc::new(rt),
                    cost,
                });
            }
        }
        None
    }

    /// Ancestor-version entries for `query` under `engine`: the IVM
    /// merge candidates for an exact-key miss at `v_new`, newest first
    /// (so the caller pays the smallest provable delta). The cache
    /// knows versions, not append history — proving the gap is
    /// pure-append is the caller's job, via
    /// [`crate::Table::ancestor_rows`] on the pinned snapshot. Recency
    /// is deliberately *not* refreshed here: the merged result is
    /// inserted as a fresh entry, and the superseded ancestor should
    /// age out rather than squat.
    pub fn ivm_sources(
        &self,
        engine: &'static str,
        query: &QueryKey,
        v_new: u64,
    ) -> Vec<IvmSource> {
        let fam = IvmFamilyKey {
            engine,
            query: query.clone(),
        };
        let lru = self.lock_lru();
        let mut out: Vec<IvmSource> = lru
            .ivm_families
            .get(&fam)
            .map(|members| {
                members
                    .iter()
                    .map(|&i| lru.slot(i))
                    .filter(|s| s.key.table_version < v_new)
                    .map(|s| IvmSource {
                        version: s.key.table_version,
                        state: Arc::clone(&s.value),
                        cost: s.cost,
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.sort_by_key(|s| std::cmp::Reverse(s.version));
        out
    }

    /// Merge a delta aggregate (the appended row range, freshly
    /// scanned) into a cached ancestor state, under the
    /// [`FaultPoint::IvmMerge`](crate::fault::FaultPoint) chaos point:
    /// `None` means an injected fault abandoned the merge before
    /// anything was built — the cache is bit-untouched (this method
    /// never takes the lock) and the caller silently falls back to a
    /// full recompute. `aggs` is the *state* query's measure list. The
    /// merged table is returned, not inserted: the caller defers the
    /// insert until its batch commits, exactly like derived results.
    pub fn try_ivm_merge(
        &self,
        cached: &ResultTable,
        delta: &ResultTable,
        aggs: &[Agg],
    ) -> Option<ResultTable> {
        let seq = self.ivm_seq.fetch_add(1, Ordering::Relaxed);
        if self.fault.fires(crate::fault::FaultPoint::IvmMerge, seq, 0) {
            self.ivm_merge_faults.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let merged = merge_ivm_state(cached, delta, aggs);
        self.ivm_hits.fetch_add(1, Ordering::Relaxed);
        Some(merged)
    }

    /// Insert (or refresh) an entry, evicting from the cold end until
    /// both bounds hold again. `cost_rows` is the estimated recompute
    /// cost (rows the producing scan visited): entries cheaper than the
    /// admission floor, or larger than the whole byte budget, are not
    /// admitted, and eviction prefers the cheapest of the coldest
    /// [`EVICT_SAMPLE`] entries.
    pub fn insert(&self, key: CacheKey, value: Arc<ResultTable>, cost_rows: u64) -> InsertOutcome {
        let rejected = InsertOutcome {
            admitted: false,
            evicted: 0,
        };
        if cost_rows < self.min_cost_rows {
            self.admission_rejects.fetch_add(1, Ordering::Relaxed);
            return rejected;
        }
        let bytes = value.approx_bytes();
        if bytes > self.max_bytes || self.max_entries == 0 {
            return rejected;
        }
        // Injected cache-insert failure: the entry is simply not cached
        // (the query already succeeded), modeling a store that sheds
        // writes under pressure. Indexed by a monotonic sequence so a
        // chaos run's decision trail is replayable.
        let seq = self.insert_seq.fetch_add(1, Ordering::Relaxed);
        if self
            .fault
            .fires(crate::fault::FaultPoint::CacheInsert, seq, 0)
        {
            self.insert_faults.fetch_add(1, Ordering::Relaxed);
            return rejected;
        }
        let mut lru = self.lock_lru();
        let touched = if let Some(i) = lru.map.get(&key).copied() {
            // Same key computed twice (e.g. duplicate misses in one
            // racing batch): refresh value + recency in place. A larger
            // replacement can push the byte total over budget, so the
            // bounds are re-enforced just like on a fresh insert.
            lru.bytes = lru.bytes - lru.slot(i).bytes + bytes;
            let s = lru.slot_mut(i);
            s.value = value;
            s.bytes = bytes;
            s.cost = cost_rows;
            lru.touch(i);
            i
        } else {
            lru.insert_front(key, value, bytes, cost_rows);
            self.insertions.fetch_add(1, Ordering::Relaxed);
            lru.head
        };
        let mut evicted = 0u64;
        while lru.len() > self.max_entries || lru.bytes > self.max_bytes {
            lru.evict_one(touched);
            evicted += 1;
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        InsertOutcome {
            admitted: true,
            evicted,
        }
    }

    /// Drop every entry recorded under `version` — called by engines
    /// after a mutation retires that snapshot. Purely a memory-reclaim
    /// courtesy: versioned keys already make such entries unreachable.
    pub fn invalidate_table_version(&self, version: u64) {
        let mut lru = self.lock_lru();
        let stale: Vec<usize> = lru
            .map
            .iter()
            .filter(|(k, _)| k.table_version == version)
            .map(|(_, &i)| i)
            .collect();
        let n = stale.len() as u64;
        for i in stale {
            lru.remove(i);
        }
        self.invalidations.fetch_add(n, Ordering::Relaxed);
    }

    pub fn clear(&self) {
        let mut lru = self.lock_lru();
        *lru = Lru::new();
    }

    pub fn len(&self) -> usize {
        self.lock_lru().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn bytes(&self) -> usize {
        self.lock_lru().bytes
    }

    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let lru = self.lock_lru();
            (lru.len(), lru.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            derived_hits: self.derived_hits.load(Ordering::Relaxed),
            ivm_hits: self.ivm_hits.load(Ordering::Relaxed),
            ivm_merge_faults: self.ivm_merge_faults.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            insert_faults: self.insert_faults.load(Ordering::Relaxed),
            derive_faults: self.derive_faults.load(Ordering::Relaxed),
            poison_rebuilds: self.poison_rebuilds.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{GroupSeries, XSpec, YSpec};
    use crate::value::Value;

    fn q(pred: Predicate) -> SelectQuery {
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_z("product")
            .with_predicate(pred)
    }

    fn rt(tag: i64) -> ResultTable {
        ResultTable {
            z_cols: vec!["product".into()],
            groups: vec![GroupSeries {
                key: vec![Value::str("chair")],
                xs: vec![Value::Int(tag)],
                ys: vec![vec![tag as f64]],
            }],
        }
    }

    fn key(tag: u64, pred: Predicate) -> CacheKey {
        CacheKey::new("test-engine", tag, &q(pred))
    }

    /// A recompute cost comfortably above the default admission floor.
    const COST: u64 = 1 << 20;

    #[test]
    fn permuted_conjunctions_collide() {
        let a = Predicate::cat_eq("location", "US").and(Predicate::num_eq("year", 2015.0));
        let b = Predicate::num_eq("year", 2015.0).and(Predicate::cat_eq("location", "US"));
        assert_eq!(QueryKey::of(&q(a)), QueryKey::of(&q(b)));
    }

    #[test]
    fn duplicate_atoms_and_singleton_in_collapse() {
        let a = Predicate::cat_eq("p", "x").and(Predicate::cat_eq("p", "x"));
        let b = Predicate::cat_eq("p", "x");
        let c = Predicate::cat_in("p", vec!["x".into()]);
        assert_eq!(QueryKey::of(&q(a.clone())), QueryKey::of(&q(b.clone())));
        assert_eq!(QueryKey::of(&q(b)), QueryKey::of(&q(c)));
        let l1 = Predicate::cat_in("p", vec!["b".into(), "a".into(), "b".into()]);
        let l2 = Predicate::cat_in("p", vec!["a".into(), "b".into()]);
        assert_eq!(QueryKey::of(&q(l1)), QueryKey::of(&q(l2)));
    }

    #[test]
    fn disjunction_order_is_canonical_but_emptiness_is_kept() {
        let atom = |p: &str| Atom::CatEq {
            col: "product".into(),
            value: p.into(),
        };
        let a = Predicate::Or(vec![vec![atom("a")], vec![atom("b")]]);
        let b = Predicate::Or(vec![vec![atom("b")], vec![atom("a")]]);
        assert_eq!(QueryKey::of(&q(a)), QueryKey::of(&q(b)));
        // Or([[]]) is `true`, Or([]) matches nothing — they must differ.
        let tautology = Predicate::Or(vec![vec![]]);
        let nothing = Predicate::Or(vec![]);
        assert_eq!(
            QueryKey::of(&q(tautology)),
            QueryKey::of(&q(Predicate::True))
        );
        assert_ne!(QueryKey::of(&q(nothing)), QueryKey::of(&q(Predicate::True)));
        // A one-conjunct Or is the same filter as a plain And.
        let single_or = Predicate::Or(vec![vec![atom("a")]]);
        let plain_and = Predicate::cat_eq("product", "a");
        assert_eq!(QueryKey::of(&q(single_or)), QueryKey::of(&q(plain_and)));
    }

    #[test]
    fn output_shape_is_not_normalized_away() {
        // Y order and Z order change the result layout → different keys.
        let base = SelectQuery::new(
            XSpec::raw("year"),
            vec![YSpec::sum("sales"), YSpec::avg("profit")],
        );
        let swapped = SelectQuery::new(
            XSpec::raw("year"),
            vec![YSpec::avg("profit"), YSpec::sum("sales")],
        );
        assert_ne!(QueryKey::of(&base), QueryKey::of(&swapped));
        let z1 = base.clone().with_z("a").with_z("b");
        let z2 = base.clone().with_z("b").with_z("a");
        assert_ne!(QueryKey::of(&z1), QueryKey::of(&z2));
        // Bin width and agg function matter too.
        let binned = SelectQuery::new(XSpec::binned("year", 2.0), vec![YSpec::sum("sales")]);
        let raw = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]);
        assert_ne!(QueryKey::of(&binned), QueryKey::of(&raw));
    }

    #[test]
    fn zero_signs_share_a_key() {
        let a = Predicate::num_eq("sales", 0.0);
        let b = Predicate::num_eq("sales", -0.0);
        assert_eq!(QueryKey::of(&q(a)), QueryKey::of(&q(b)));
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let cache = ResultCache::new(&CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
            min_cost_rows: 0,
        });
        let k1 = key(1, Predicate::cat_eq("p", "a"));
        let k2 = key(1, Predicate::cat_eq("p", "b"));
        let k3 = key(1, Predicate::cat_eq("p", "c"));
        cache.insert(k1.clone(), Arc::new(rt(1)), COST);
        cache.insert(k2.clone(), Arc::new(rt(2)), COST);
        assert!(cache.get(&k1).is_some()); // k1 now most recent
        let evicted = cache.insert(k3.clone(), Arc::new(rt(3)), COST).evicted;
        assert_eq!(evicted, 1);
        assert!(cache.get(&k2).is_none(), "k2 was coldest and must go");
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
    }

    #[test]
    fn byte_bound_is_enforced() {
        let one = rt(1).approx_bytes();
        let cache = ResultCache::new(&CacheConfig {
            max_entries: 100,
            max_bytes: one * 2,
            min_cost_rows: 0,
        });
        for i in 0..10u64 {
            cache.insert(
                key(1, Predicate::num_eq("year", i as f64)),
                Arc::new(rt(i as i64)),
                COST,
            );
        }
        assert!(cache.len() <= 2);
        assert!(cache.bytes() <= one * 2);
        assert!(cache.stats().evictions >= 8);
        // A value bigger than the whole budget is never admitted.
        let tiny = ResultCache::new(&CacheConfig {
            max_entries: 100,
            max_bytes: 1,
            min_cost_rows: 0,
        });
        let outcome = tiny.insert(key(1, Predicate::True), Arc::new(rt(1)), COST);
        assert!(!outcome.admitted);
        assert_eq!(outcome.evicted, 0);
        assert!(tiny.is_empty());
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let cache = ResultCache::new(&CacheConfig::default());
        let k = key(1, Predicate::True);
        cache.insert(k.clone(), Arc::new(rt(1)), COST);
        cache.insert(k.clone(), Arc::new(rt(2)), COST);
        assert_eq!(cache.len(), 1);
        assert_eq!(*cache.get(&k).unwrap(), rt(2));
    }

    #[test]
    fn refresh_with_larger_value_still_enforces_byte_bound() {
        let small = rt(1);
        let mut big = rt(2);
        big.groups[0].ys[0].extend(std::iter::repeat_n(0.0, 64));
        assert!(big.approx_bytes() > small.approx_bytes());
        let cache = ResultCache::new(&CacheConfig {
            max_entries: 100,
            max_bytes: small.approx_bytes() * 2 + big.approx_bytes() / 2,
            min_cost_rows: 0,
        });
        let k1 = key(1, Predicate::cat_eq("p", "a"));
        let k2 = key(1, Predicate::cat_eq("p", "b"));
        cache.insert(k1.clone(), Arc::new(small.clone()), COST);
        cache.insert(k2.clone(), Arc::new(small.clone()), COST);
        // Refreshing k2 with a bigger value pushes the total over the
        // budget: the coldest entry (k1) must be evicted.
        let evicted = cache
            .insert(k2.clone(), Arc::new(big.clone()), COST)
            .evicted;
        assert_eq!(evicted, 1);
        assert!(cache.get(&k1).is_none());
        assert_eq!(*cache.get(&k2).unwrap(), big);
        assert!(cache.bytes() <= small.approx_bytes() * 2 + big.approx_bytes() / 2);
    }

    #[test]
    fn version_partition_and_invalidation() {
        let cache = ResultCache::new(&CacheConfig::default());
        let old = key(7, Predicate::True);
        let new = key(8, Predicate::True);
        cache.insert(old.clone(), Arc::new(rt(1)), COST);
        cache.insert(new.clone(), Arc::new(rt(2)), COST);
        assert_eq!(*cache.get(&old).unwrap(), rt(1));
        assert_eq!(*cache.get(&new).unwrap(), rt(2));
        cache.invalidate_table_version(7);
        assert!(cache.get(&old).is_none());
        assert_eq!(*cache.get(&new).unwrap(), rt(2));
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn stats_and_hit_rate() {
        let cache = ResultCache::new(&CacheConfig::default());
        let k = key(1, Predicate::True);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), Arc::new(rt(1)), COST);
        assert!(cache.get(&k).is_some());
        assert!(cache.get(&k).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn admission_rejects_cheap_results() {
        let cache = ResultCache::new(&CacheConfig::default()); // floor = 64 rows
        let k = key(1, Predicate::True);
        let outcome = cache.insert(k.clone(), Arc::new(rt(1)), 8);
        assert!(!outcome.admitted, "an 8-row scan is cheaper than a probe");
        assert!(cache.is_empty());
        assert_eq!(cache.stats().admission_rejects, 1);
        assert!(cache.insert(k.clone(), Arc::new(rt(1)), 64).admitted);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_prefers_cheap_entries_over_pure_recency() {
        let cache = ResultCache::new(&CacheConfig {
            max_entries: 3,
            max_bytes: usize::MAX,
            min_cost_rows: 0,
        });
        let expensive_old = key(1, Predicate::cat_eq("p", "a"));
        let cheap_mid = key(1, Predicate::cat_eq("p", "b"));
        let expensive_mid = key(1, Predicate::cat_eq("p", "c"));
        cache.insert(expensive_old.clone(), Arc::new(rt(1)), 1_000_000);
        cache.insert(cheap_mid.clone(), Arc::new(rt(2)), 10);
        cache.insert(expensive_mid.clone(), Arc::new(rt(3)), 1_000_000);
        // Pure LRU would evict `expensive_old`; cost weighting must
        // sacrifice the trivially recomputable entry instead.
        let evicted = cache
            .insert(
                key(1, Predicate::cat_eq("p", "d")),
                Arc::new(rt(4)),
                1_000_000,
            )
            .evicted;
        assert_eq!(evicted, 1);
        assert!(
            cache.get(&cheap_mid).is_none(),
            "cheapest sampled entry goes"
        );
        assert!(cache.get(&expensive_old).is_some());
        assert!(cache.get(&expensive_mid).is_some());
    }

    /// A result with `cells` x/y points — bigger `approx_bytes` than the
    /// single-cell [`rt`] fixture.
    fn rt_sized(tag: i64, cells: usize) -> ResultTable {
        ResultTable {
            z_cols: vec!["product".into()],
            groups: vec![GroupSeries {
                key: vec![Value::str("chair")],
                xs: (0..cells as i64).map(|i| Value::Int(tag + i)).collect(),
                ys: vec![vec![tag as f64; cells]],
            }],
        }
    }

    #[test]
    fn eviction_weighs_bytes_per_cost() {
        let cache = ResultCache::new(&CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
            min_cost_rows: 0,
        });
        // Same recompute cost, very different sizes: the big entry saves
        // the same scan while holding far more memory, so its retention
        // value (cost per byte) is far lower and it must go first even
        // though the small entry is the colder of the two.
        let small_expensive = key(1, Predicate::cat_eq("p", "small"));
        let big_cheap = key(1, Predicate::cat_eq("p", "big"));
        cache.insert(small_expensive.clone(), Arc::new(rt(1)), 1_000_000);
        cache.insert(big_cheap.clone(), Arc::new(rt_sized(2, 4096)), 1_000_000);
        let evicted = cache
            .insert(
                key(1, Predicate::cat_eq("p", "c")),
                Arc::new(rt(3)),
                1_000_000,
            )
            .evicted;
        assert_eq!(evicted, 1);
        assert!(
            cache.get(&big_cheap).is_none(),
            "big-but-cheap (per byte) entry must be sacrificed first"
        );
        assert!(
            cache.get(&small_expensive).is_some(),
            "small-but-expensive entry must survive"
        );
    }

    #[test]
    fn eviction_ages_the_cost_of_long_idle_entries() {
        let cache = ResultCache::new(&CacheConfig {
            max_entries: 3,
            max_bytes: usize::MAX,
            min_cost_rows: 0,
        });
        // `ancient` is the most expensive entry in the cache, but it then
        // sits untouched for many half-lives while its neighbours are
        // refreshed; its aged cost drops below theirs and it becomes the
        // victim despite the highest raw cost.
        let ancient = key(1, Predicate::cat_eq("p", "ancient"));
        let warm_a = key(1, Predicate::cat_eq("p", "warm_a"));
        let warm_b = key(1, Predicate::cat_eq("p", "warm_b"));
        cache.insert(ancient.clone(), Arc::new(rt(1)), 1 << 30);
        cache.insert(warm_a.clone(), Arc::new(rt(2)), 1 << 20);
        cache.insert(warm_b.clone(), Arc::new(rt(3)), 1 << 20);
        // 20 half-lives of touches on the warm entries: ancient's cost is
        // aged to 2³⁰ ⁻ ²⁰ = 2¹⁰, far below the warm entries' 2²⁰.
        for _ in 0..(20 * COST_AGE_HALF_LIFE / 2) {
            cache.get(&warm_a);
            cache.get(&warm_b);
        }
        let evicted = cache
            .insert(
                key(1, Predicate::cat_eq("p", "d")),
                Arc::new(rt(4)),
                1 << 20,
            )
            .evicted;
        assert_eq!(evicted, 1);
        assert!(
            cache.get(&ancient).is_none(),
            "idle-aged cost must lose to recently useful entries"
        );
        assert!(cache.get(&warm_a).is_some());
        assert!(cache.get(&warm_b).is_some());
    }

    // -----------------------------------------------------------------
    // Subsumption / derivation
    // -----------------------------------------------------------------

    fn qk(q: &SelectQuery) -> QueryKey {
        QueryKey::of(q)
    }

    fn base_q() -> SelectQuery {
        SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("product")
    }

    #[test]
    fn derive_plan_accepts_key_filters_and_pinned_drops() {
        let cached = qk(&base_q());
        // Tighten on the Z column, keeping it in the output.
        let filt = qk(&base_q().with_predicate(Predicate::cat_in(
            "product",
            vec!["chair".into(), "desk".into()],
        )));
        let plan = derive_plan(&cached, &filt).expect("key filter qualifies");
        assert_eq!(plan.keep_z, vec![0]);
        assert_eq!(plan.key_filters.len(), 1);
        assert!(plan.dropped.is_empty());
        // Z-slice: pin the Z column and drop it from the output.
        let slice = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("product", "chair"));
        let plan = derive_plan(&cached, &qk(&slice)).expect("pinned drop qualifies");
        assert!(plan.keep_z.is_empty());
        assert!(!plan.dropped.is_empty());
        // Residual atoms on a raw X column qualify as cell filters.
        let xcut = qk(&base_q().with_predicate(Predicate::num_eq("year", 2015.0)));
        let plan = derive_plan(&cached, &xcut).expect("raw-x filter qualifies");
        assert_eq!(plan.x_filters.len(), 1);
    }

    #[test]
    fn derive_plan_declines_unqualified_shapes() {
        let cached = qk(&base_q());
        // Unpinned drop: zs removed without an equality on it.
        let unpinned = qk(&SelectQuery::new(
            XSpec::raw("year"),
            vec![YSpec::sum("sales")],
        ));
        assert!(derive_plan(&cached, &unpinned).is_none());
        // Residual on a column absent from the cached result.
        let off_result = qk(&base_q().with_predicate(Predicate::cat_eq("location", "US")));
        assert!(derive_plan(&cached, &off_result).is_none());
        // Superset direction reversed: cached is *narrower* than wanted.
        let narrow = qk(&base_q().with_predicate(Predicate::cat_eq("product", "chair")));
        assert!(derive_plan(&narrow, &cached).is_none());
        // Different Y measures or order.
        let other_y = qk(
            &SelectQuery::new(XSpec::raw("year"), vec![YSpec::avg("sales")])
                .with_z("product")
                .with_predicate(Predicate::cat_eq("product", "chair")),
        );
        assert!(derive_plan(&cached, &other_y).is_none());
        // Binned X declines residual atoms on X.
        let binned = qk(
            &SelectQuery::new(XSpec::binned("year", 2.0), vec![YSpec::sum("sales")])
                .with_z("product"),
        );
        let binned_cut = qk(&SelectQuery::new(
            XSpec::binned("year", 2.0),
            vec![YSpec::sum("sales")],
        )
        .with_z("product")
        .with_predicate(Predicate::num_eq("year", 2014.0)));
        assert!(derive_plan(&binned, &binned_cut).is_none());
        // Disjunctions decline.
        let or_pred = Predicate::Or(vec![
            vec![Atom::CatEq {
                col: "product".into(),
                value: "chair".into(),
            }],
            vec![Atom::CatEq {
                col: "product".into(),
                value: "desk".into(),
            }],
        ]);
        assert!(derive_plan(&cached, &qk(&base_q().with_predicate(or_pred))).is_none());
        // Z permutations decline (group order would be wrong).
        let ab = qk(
            &SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
                .with_z("a")
                .with_z("b"),
        );
        let ba = qk(
            &SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
                .with_z("b")
                .with_z("a")
                .with_predicate(Predicate::cat_eq("a", "x")),
        );
        assert!(derive_plan(&ab, &ba).is_none());
        // Identical queries are the exact-hit path's job.
        assert!(derive_plan(&cached, &cached.clone()).is_none());
    }

    #[test]
    fn lookup_derived_filters_slices_and_inserts_the_result() {
        let cache = ResultCache::new(&CacheConfig::admit_all());
        let src = ResultTable {
            z_cols: vec!["product".into()],
            groups: vec![
                GroupSeries {
                    key: vec![Value::str("chair")],
                    xs: vec![Value::Int(2014), Value::Int(2015)],
                    ys: vec![vec![1.0, 2.0]],
                },
                GroupSeries {
                    key: vec![Value::str("desk")],
                    xs: vec![Value::Int(2015)],
                    ys: vec![vec![7.0]],
                },
            ],
        };
        let full = CacheKey::new("e", 1, &base_q());
        cache.insert(full, Arc::new(src), COST);

        // Per-Z-slice extraction: pin product, drop it from the output.
        let slice = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("product", "desk"));
        let hit = cache
            .lookup_derived(&CacheKey::new("e", 1, &slice))
            .expect("slice derives");
        assert_eq!(hit.cost, COST, "derived cost inherited from the source");
        let got = hit.result;
        // The probe itself must not have cached anything (insertion is
        // the committing caller's job)…
        assert!(cache.get(&CacheKey::new("e", 1, &slice)).is_none());
        // …re-inserting at the carried cost is what makes repeats exact
        // hits.
        let outcome = cache.insert(CacheKey::new("e", 1, &slice), Arc::clone(&got), hit.cost);
        assert!(outcome.admitted, "derived entry must be cacheable");
        assert_eq!(got.z_cols, Vec::<String>::new());
        assert_eq!(got.groups.len(), 1);
        assert!(got.groups[0].key.is_empty());
        assert_eq!(got.groups[0].ys[0], vec![7.0]);
        // The derived entry was inserted under its own key: an exact
        // probe now hits and shares the same allocation.
        let again = cache
            .get(&CacheKey::new("e", 1, &slice))
            .expect("derived entry cached");
        assert!(Arc::ptr_eq(&got, &again));
        assert_eq!(cache.stats().derived_hits, 1);

        // X filtering trims cells inside groups and drops empty groups.
        let xcut = base_q().with_predicate(Predicate::num_eq("year", 2014.0));
        let got = cache
            .lookup_derived(&CacheKey::new("e", 1, &xcut))
            .expect("x filter derives")
            .result;
        assert_eq!(got.groups.len(), 1, "desk has no 2014 cell");
        assert_eq!(got.groups[0].key, vec![Value::str("chair")]);
        assert_eq!(got.groups[0].xs, vec![Value::Int(2014)]);
        assert_eq!(got.groups[0].ys[0], vec![1.0]);

        // Wrong version / engine: nothing to derive from.
        assert!(cache
            .lookup_derived(&CacheKey::new("e", 2, &xcut))
            .is_none());
        assert!(cache
            .lookup_derived(&CacheKey::new("f", 1, &xcut))
            .is_none());
    }

    #[test]
    fn lookup_derived_declines_zero_sign_key_collisions() {
        // Two float Z keys that direct execution would merge under a
        // `z = 0.0` pin (0.0 and -0.0) must decline, not mis-derive.
        let cache = ResultCache::new(&CacheConfig::admit_all());
        let full = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")]).with_z("w");
        let src = ResultTable {
            z_cols: vec!["w".into()],
            groups: vec![
                GroupSeries {
                    key: vec![Value::Float(-0.0)],
                    xs: vec![Value::Int(2014)],
                    ys: vec![vec![1.0]],
                },
                GroupSeries {
                    key: vec![Value::Float(0.0)],
                    xs: vec![Value::Int(2014)],
                    ys: vec![vec![2.0]],
                },
            ],
        };
        cache.insert(CacheKey::new("e", 1, &full), Arc::new(src), COST);
        let pinned = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::num_eq("w", 0.0));
        assert!(
            cache
                .lookup_derived(&CacheKey::new("e", 1, &pinned))
                .is_none(),
            "±0.0 projected-key collision must fall back to a real scan"
        );
    }

    #[test]
    fn lookup_derived_declines_nonadjacent_collisions_from_leading_drops() {
        // Regression: when the dropped (pinned) Z column *precedes* a
        // kept one, colliding projected keys are not adjacent (groups
        // are sorted by the full key), so an adjacency guard misses
        // them. Two i64 keys ≥ 2⁵³ share one f64 image: both satisfy
        // the `num_eq` pin, yet direct execution keeps them as separate
        // groups merged per kept key — only a decline is correct.
        let cache = ResultCache::new(&CacheConfig::admit_all());
        let full = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_z("w")
            .with_z("a");
        let alias1 = 9_007_199_254_740_992i64; // 2^53
        let alias2 = 9_007_199_254_740_993i64; // distinct, same f64 image
        let g = |w: i64, a: &str, y: f64| GroupSeries {
            key: vec![Value::Int(w), Value::str(a)],
            xs: vec![Value::Int(2014)],
            ys: vec![vec![y]],
        };
        let src = ResultTable {
            z_cols: vec!["w".into(), "a".into()],
            groups: vec![
                g(alias1, "x", 1.0),
                g(alias1, "y", 2.0),
                g(alias2, "x", 4.0),
                g(alias2, "y", 8.0),
            ],
        };
        cache.insert(CacheKey::new("e", 1, &full), Arc::new(src), COST);
        let pinned = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_z("a")
            .with_predicate(Predicate::num_eq("w", alias1 as f64));
        assert!(
            cache
                .lookup_derived(&CacheKey::new("e", 1, &pinned))
                .is_none(),
            "aliased i64 pins must decline, wherever the dropped column sits"
        );
    }

    #[test]
    fn injected_insert_faults_skip_the_insert() {
        // Every-index firing: no insert ever lands, yet the cache stays
        // fully operational and counts each dropped write.
        let cache = ResultCache::with_fault(
            &CacheConfig::admit_all(),
            crate::fault::FaultSpec::with_rate(0xFA17, 1.0),
        );
        for tag in 0..3 {
            let out = cache.insert(
                CacheKey::new("e", 1, &q(Predicate::num_eq("year", tag as f64))),
                Arc::new(rt(tag)),
                COST,
            );
            assert!(!out.admitted);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.insert_faults, 3);
        // Disarmed spec at the same shape: inserts land normally.
        let clean = ResultCache::new(&CacheConfig::admit_all());
        assert!(
            clean
                .insert(
                    CacheKey::new("e", 1, &q(Predicate::True)),
                    Arc::new(rt(1)),
                    COST
                )
                .admitted
        );
        assert_eq!(clean.stats().insert_faults, 0);
    }

    #[test]
    fn injected_derive_faults_report_a_plain_miss_and_leave_the_cache_untouched() {
        // A seed where the first derivation attempt fails but the
        // source insert (CacheInsert index 0) lands — the per-point
        // salts make the two decision streams independent, so such
        // seeds are dense.
        let spec = (0..10_000u64)
            .map(|seed| crate::fault::FaultSpec::with_rate(seed, 0.5))
            .find(|s| {
                s.fires(crate::fault::FaultPoint::CacheDerive, 0, 0)
                    && !s.fires(crate::fault::FaultPoint::CacheInsert, 0, 0)
            })
            .expect("a derive-fails/insert-lands seed exists");
        let cache = ResultCache::with_fault(&CacheConfig::admit_all(), spec);
        let src = ResultTable {
            z_cols: vec!["product".into()],
            groups: vec![GroupSeries {
                key: vec![Value::str("chair")],
                xs: vec![Value::Int(2014)],
                ys: vec![vec![1.0]],
            }],
        };
        assert!(
            cache
                .insert(CacheKey::new("e", 1, &base_q()), Arc::new(src), COST)
                .admitted
        );
        let slice = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum("sales")])
            .with_predicate(Predicate::cat_eq("product", "chair"));
        let before = cache.stats();
        assert!(
            cache
                .lookup_derived(&CacheKey::new("e", 1, &slice))
                .is_none(),
            "the abandoned derivation must look like a plain miss"
        );
        let after = cache.stats();
        assert_eq!(after.derive_faults, 1);
        assert_eq!(
            CacheStats {
                derive_faults: 0,
                ..after
            },
            before,
            "every other counter — and entries/bytes — must be bit-identical"
        );
        // The derivation counter only advances when candidates exist:
        // a family-less probe on the same cache leaves it alone.
        let other_family = SelectQuery::new(XSpec::raw("month"), vec![YSpec::sum("sales")]);
        assert!(cache
            .lookup_derived(&CacheKey::new("e", 1, &other_family))
            .is_none());
        assert_eq!(cache.stats().derive_faults, 1);
    }

    #[test]
    fn poisoned_cache_lock_rebuilds_empty() {
        crate::fault::silence_injected_panics();
        let cache = ResultCache::new(&CacheConfig::admit_all());
        let key = CacheKey::new("e", 1, &q(Predicate::True));
        cache.insert(key.clone(), Arc::new(rt(7)), COST);
        assert_eq!(cache.len(), 1);
        cache.poison_for_chaos();
        // First post-poison access rebuilds the store empty; after
        // that the cache serves inserts and lookups as usual.
        assert_eq!(cache.get(&key), None);
        let stats = cache.stats();
        assert_eq!(stats.poison_rebuilds, 1);
        assert_eq!(stats.entries, 0);
        assert!(cache.insert(key.clone(), Arc::new(rt(7)), COST).admitted);
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.stats().poison_rebuilds, 1, "rebuild happens once");
    }

    // ---- Incremental view maintenance helpers ----

    fn series(key: &[i64], xs: &[i64], ys: &[&[f64]]) -> GroupSeries {
        GroupSeries {
            key: key.iter().map(|&k| Value::Int(k)).collect(),
            xs: xs.iter().map(|&x| Value::Int(x)).collect(),
            ys: ys.iter().map(|col| col.to_vec()).collect(),
        }
    }

    #[test]
    fn ivm_form_is_identity_without_avg_and_rewrites_avg_once() {
        let plain = SelectQuery::new(
            XSpec::raw("year"),
            vec![
                YSpec::sum("sales"),
                YSpec::new("sales", Agg::Min),
                YSpec::new("*", Agg::Count),
            ],
        );
        let f = ivm_form(&plain).expect("all aggregates delta-able");
        assert!(!f.augmented);
        assert_eq!(QueryKey::of(&f.state_query), QueryKey::of(&plain));

        // Two AVGs: both rewritten to SUM, but only ONE trailing
        // COUNT(*) companion is appended — the per-cell count is shared.
        let avg = SelectQuery::new(
            XSpec::raw("year"),
            vec![
                YSpec::avg("sales"),
                YSpec::sum("sales"),
                YSpec::avg("profit"),
            ],
        )
        .with_z("product")
        .with_predicate(Predicate::cat_eq("location", "US"));
        let f = ivm_form(&avg).expect("avg is delta-able via its companion");
        assert!(f.augmented);
        assert_eq!(f.state_query.ys.len(), avg.ys.len() + 1);
        assert_eq!(f.state_query.ys[0].agg, Agg::Sum);
        assert_eq!(f.state_query.ys[0].col, "sales");
        assert_eq!(f.state_query.ys[1].agg, Agg::Sum);
        assert_eq!(f.state_query.ys[2].agg, Agg::Sum);
        assert_eq!(f.state_query.ys[2].col, "profit");
        assert_eq!(f.state_query.ys[3].agg, Agg::Count);
        // Predicate, axes, and slicing carry over untouched.
        assert_eq!(f.state_query.predicate, avg.predicate);
        assert_eq!(f.state_query.zs, avg.zs);
    }

    #[test]
    fn ivm_finalize_divides_each_avg_by_the_shared_count() {
        let user = SelectQuery::new(
            XSpec::raw("year"),
            vec![YSpec::sum("sales"), YSpec::avg("sales")],
        );
        // State layout: [sum, sum(avg's), trailing count].
        let state = ResultTable {
            z_cols: vec![],
            groups: vec![series(
                &[],
                &[2014, 2015],
                &[&[10.0, -3.0], &[10.0, -3.0], &[4.0, 2.0]],
            )],
        };
        let out = ivm_finalize(&state, &user);
        assert_eq!(out.groups.len(), 1);
        assert_eq!(out.groups[0].ys.len(), 2, "companion column dropped");
        assert_eq!(out.groups[0].ys[0], vec![10.0, -3.0], "sum untouched");
        assert_eq!(out.groups[0].ys[1], vec![2.5, -1.5], "avg = sum / n");
        assert_eq!(out.groups[0].xs, state.groups[0].xs);
    }

    #[test]
    fn merge_ivm_state_folds_cells_and_interleaves_groups() {
        let aggs = [Agg::Sum, Agg::Min, Agg::Max, Agg::Count];
        let cached = ResultTable {
            z_cols: vec!["product".into()],
            groups: vec![
                series(
                    &[1],
                    &[2014, 2016],
                    &[&[10.0, 20.0], &[-1.0, 2.0], &[5.0, 8.0], &[3.0, 4.0]],
                ),
                series(&[3], &[2014], &[&[7.0], &[7.0], &[7.0], &[1.0]]),
            ],
        };
        let delta = ResultTable {
            z_cols: vec!["product".into()],
            groups: vec![
                // Overlaps group [1]: one shared x (2016), one new (2015).
                series(
                    &[1],
                    &[2015, 2016],
                    &[&[100.0, 1.0], &[0.0, -9.0], &[0.0, 6.0], &[1.0, 2.0]],
                ),
                // Brand-new group, sorts between [1] and [3].
                series(&[2], &[2020], &[&[50.0], &[50.0], &[50.0], &[1.0]]),
            ],
        };
        let out = merge_ivm_state(&cached, &delta, &aggs);
        assert_eq!(out.z_cols, cached.z_cols);
        assert_eq!(out.groups.len(), 3, "groups interleave by key order");
        assert_eq!(out.groups[0].key, vec![Value::Int(1)]);
        assert_eq!(out.groups[1].key, vec![Value::Int(2)]);
        assert_eq!(out.groups[2].key, vec![Value::Int(3)]);

        let g = &out.groups[0];
        assert_eq!(
            g.xs,
            vec![Value::Int(2014), Value::Int(2015), Value::Int(2016)],
            "xs interleave in ascending order"
        );
        assert_eq!(g.ys[0], vec![10.0, 100.0, 21.0], "sum adds on shared x");
        assert_eq!(g.ys[1], vec![-1.0, 0.0, -9.0], "min folds down");
        assert_eq!(g.ys[2], vec![5.0, 0.0, 8.0], "max folds up");
        assert_eq!(g.ys[3], vec![3.0, 1.0, 6.0], "count adds");
        // One-sided groups pass through bit-identically.
        assert_eq!(out.groups[1], delta.groups[1]);
        assert_eq!(out.groups[2], cached.groups[1]);
    }

    #[test]
    fn ivm_sources_returns_only_older_versions_newest_first() {
        let cache = ResultCache::new(&CacheConfig::admit_all());
        let query = q(Predicate::True);
        for v in [3u64, 7, 5] {
            cache.insert(
                CacheKey::new("test-engine", v, &query),
                Arc::new(rt(v as i64)),
                COST + v,
            );
        }
        // A different family and a different engine must not leak in.
        cache.insert(
            CacheKey::new("test-engine", 4, &q(Predicate::cat_eq("p", "x"))),
            Arc::new(rt(4)),
            COST,
        );
        cache.insert(
            CacheKey::new("other-engine", 4, &query),
            Arc::new(rt(4)),
            COST,
        );
        let sources = cache.ivm_sources("test-engine", &QueryKey::of(&query), 6);
        let versions: Vec<u64> = sources.iter().map(|s| s.version).collect();
        assert_eq!(versions, vec![5, 3], "strictly older, newest first");
        assert_eq!(sources[0].cost, COST + 5, "cost rides along");
        assert_eq!(&*sources[0].state, &rt(5));
    }

    #[test]
    fn try_ivm_merge_fault_declines_and_counts_then_recovers() {
        let spec = (0u64..)
            .map(|seed| crate::fault::FaultSpec::with_rate(seed, 0.5))
            .find(|s| {
                s.fires(crate::fault::FaultPoint::IvmMerge, 0, 0)
                    && !s.fires(crate::fault::FaultPoint::IvmMerge, 1, 0)
            })
            .unwrap();
        let cache = ResultCache::with_fault(&CacheConfig::admit_all(), spec);
        let cached = rt(1);
        let delta = rt(2);
        assert!(
            cache.try_ivm_merge(&cached, &delta, &[Agg::Sum]).is_none(),
            "the first merge faults"
        );
        let stats = cache.stats();
        assert_eq!(stats.ivm_merge_faults, 1);
        assert_eq!(stats.ivm_hits, 0);
        assert_eq!((stats.entries, stats.bytes), (0, 0), "cache untouched");

        let merged = cache
            .try_ivm_merge(&cached, &delta, &[Agg::Sum])
            .expect("the second merge is clean");
        assert_eq!(merged.groups[0].xs, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(cache.stats().ivm_hits, 1);
        assert_eq!(cache.stats().ivm_merge_faults, 1);
    }
}
