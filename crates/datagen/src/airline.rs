//! Synthetic twin of the airline on-time dataset (thesis §7: "a real
//! airline dataset with 15 million rows and 29 attributes"), carrying the
//! delay structure the §7.1 queries probe:
//!
//! * some airports' **average departure and weather delays increase over
//!   the years** (Table 7.1's `argany [t > 0] T(f)`);
//! * some airports' **arrival delays differ sharply between June and
//!   December** (Table 7.2's `argmax D(f1, f2)`).

use crate::util::{gaussian, latent_in};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use zv_storage::{CatColumn, Column, DataType, Field, Schema, Table};

/// Configuration for [`generate`].
#[derive(Clone, Debug)]
pub struct AirlineConfig {
    pub rows: usize,
    pub airports: usize,
    pub carriers: usize,
    /// Inclusive year span.
    pub years: (i64, i64),
    pub seed: u64,
}

impl Default for AirlineConfig {
    fn default() -> Self {
        AirlineConfig {
            rows: 100_000,
            airports: 50,
            carriers: 12,
            years: (1996, 2008),
            seed: 0xA1B2,
        }
    }
}

impl AirlineConfig {
    /// The paper's full-scale dataset (15M rows).
    pub fn full_scale() -> Self {
        AirlineConfig {
            rows: 15_000_000,
            airports: 300,
            ..Default::default()
        }
    }
}

/// Named airports, first in the dictionary (the §7.1 query sets
/// OA = DA = {JFK, SFO, ...}).
pub const NAMED_AIRPORTS: [&str; 10] = [
    "JFK", "SFO", "ORD", "LAX", "ATL", "DFW", "DEN", "SEA", "BOS", "MIA",
];

pub fn airport_name(i: usize) -> String {
    NAMED_AIRPORTS
        .get(i)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("AP{i:03}"))
}

/// Airports planted with increasing departure delay over years.
pub fn has_increasing_dep_delay(a: usize) -> bool {
    a.is_multiple_of(3)
}

/// Airports planted with increasing weather delay over years.
pub fn has_increasing_weather_delay(a: usize) -> bool {
    a.is_multiple_of(4)
}

/// Airports planted with a June↔December arrival-delay contrast.
pub fn has_seasonal_arr_contrast(a: usize) -> bool {
    a.is_multiple_of(5)
}

const TAG_DEP: u64 = 11;
const TAG_WX: u64 = 12;
const TAG_SEASONAL: u64 = 13;
const TAG_BASE: u64 = 14;

/// Generate the dataset.
pub fn generate(cfg: &AirlineConfig) -> Arc<Table> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (y0, y1) = cfg.years;
    assert!(y1 >= y0);

    let mut origin = CatColumn::new();
    let mut dest = CatColumn::new();
    let mut carrier = CatColumn::new();
    for a in 0..cfg.airports {
        origin.intern(&airport_name(a));
        dest.intern(&airport_name(a));
    }
    for c in 0..cfg.carriers {
        carrier.intern(&format!("CR{c:02}"));
    }

    let mut years = Vec::with_capacity(cfg.rows);
    let mut months = Vec::with_capacity(cfg.rows);
    let mut days = Vec::with_capacity(cfg.rows);
    let mut dep_delay = Vec::with_capacity(cfg.rows);
    let mut arr_delay = Vec::with_capacity(cfg.rows);
    let mut weather_delay = Vec::with_capacity(cfg.rows);
    let mut distance = Vec::with_capacity(cfg.rows);
    let mut air_time = Vec::with_capacity(cfg.rows);
    let mut cancelled = Vec::with_capacity(cfg.rows);

    let base_delay: Vec<f64> = (0..cfg.airports)
        .map(|a| latent_in(cfg.seed, TAG_BASE, a as u64, 5.0, 20.0))
        .collect();
    let dep_slope: Vec<f64> = (0..cfg.airports)
        .map(|a| {
            if has_increasing_dep_delay(a) {
                latent_in(cfg.seed, TAG_DEP, a as u64, 0.8, 2.5)
            } else {
                latent_in(cfg.seed, TAG_DEP, a as u64, -1.2, -0.1)
            }
        })
        .collect();
    let wx_slope: Vec<f64> = (0..cfg.airports)
        .map(|a| {
            if has_increasing_weather_delay(a) {
                latent_in(cfg.seed, TAG_WX, a as u64, 0.4, 1.5)
            } else {
                latent_in(cfg.seed, TAG_WX, a as u64, -0.6, -0.05)
            }
        })
        .collect();
    let seasonal_amp: Vec<f64> = (0..cfg.airports)
        .map(|a| {
            if has_seasonal_arr_contrast(a) {
                latent_in(cfg.seed, TAG_SEASONAL, a as u64, 25.0, 60.0)
            } else {
                latent_in(cfg.seed, TAG_SEASONAL, a as u64, 0.0, 5.0)
            }
        })
        .collect();

    for _ in 0..cfg.rows {
        let a = rng.gen_range(0..cfg.airports);
        let year = rng.gen_range(y0..=y1);
        let month = rng.gen_range(1..=12i64);
        let day = rng.gen_range(1..=28i64);
        let t = (year - y0) as f64;

        let dep = (base_delay[a] + dep_slope[a] * t + 4.0 * gaussian(&mut rng)).max(-10.0);
        let wx = (2.0 + wx_slope[a] * t + 2.0 * gaussian(&mut rng)).max(0.0);
        // December (and nearby winter months) get the planted contrast.
        let winter = match month {
            12 => 1.0,
            1 | 11 => 0.6,
            6 | 7 => -0.3,
            _ => 0.0,
        };
        let arr = (dep * 0.7 + seasonal_amp[a] * winter + 5.0 * gaussian(&mut rng)).max(-20.0);
        let dist = latent_in(
            cfg.seed,
            77,
            (a * 31 + (day as usize % 7)) as u64,
            150.0,
            2800.0,
        );

        origin.push_code(a as u32);
        dest.push_code(((a + 1 + rng.gen_range(0..cfg.airports - 1)) % cfg.airports) as u32);
        carrier.push_code((a % cfg.carriers) as u32);
        years.push(year);
        months.push(month);
        days.push(day);
        dep_delay.push(dep);
        arr_delay.push(arr);
        weather_delay.push(wx);
        distance.push(dist);
        air_time.push(dist / 7.5 + 3.0 * gaussian(&mut rng));
        cancelled.push(i64::from(rng.gen_range(0..100) < 2));
    }

    let schema = Schema::new(vec![
        Field::new("origin", DataType::Cat),
        Field::new("dest", DataType::Cat),
        Field::new("carrier", DataType::Cat),
        Field::new("year", DataType::Int),
        Field::new("month", DataType::Int),
        Field::new("day", DataType::Int),
        Field::new("dep_delay", DataType::Float),
        Field::new("arr_delay", DataType::Float),
        Field::new("weather_delay", DataType::Float),
        Field::new("distance", DataType::Float),
        Field::new("air_time", DataType::Float),
        Field::new("cancelled", DataType::Int),
    ]);
    let columns = vec![
        Column::Cat(origin),
        Column::Cat(dest),
        Column::Cat(carrier),
        Column::Int(years.into()),
        Column::Int(months.into()),
        Column::Int(days.into()),
        Column::Float(dep_delay),
        Column::Float(arr_delay),
        Column::Float(weather_delay),
        Column::Float(distance),
        Column::Float(air_time),
        Column::Int(cancelled.into()),
    ];
    Arc::new(Table::from_columns(schema, columns).expect("generator schema is consistent"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zv_analytics::{trend, Series};
    use zv_storage::{BitmapDb, Database, Predicate, SelectQuery, XSpec, YSpec};

    fn db() -> BitmapDb {
        BitmapDb::new(generate(&AirlineConfig {
            rows: 80_000,
            airports: 20,
            ..Default::default()
        }))
    }

    fn airport_trend(db: &BitmapDb, airport: &str, measure: &str) -> f64 {
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::avg(measure)])
            .with_predicate(Predicate::cat_eq("origin", airport));
        let g = db.execute(&q).unwrap().groups[0].clone();
        trend(&Series::new(g.points(0)))
    }

    #[test]
    fn planted_delay_trends() {
        let db = db();
        // airport 0 (JFK): dep increasing (0%3==0) and weather increasing
        assert!(airport_trend(&db, "JFK", "dep_delay") > 0.0);
        assert!(airport_trend(&db, "JFK", "weather_delay") > 0.0);
        // airport 1 (SFO): neither planted → decreasing
        assert!(airport_trend(&db, "SFO", "dep_delay") < 0.0);
        assert!(airport_trend(&db, "SFO", "weather_delay") < 0.0);
        // airport 3 (LAX): dep increasing
        assert!(airport_trend(&db, "LAX", "dep_delay") > 0.0);
    }

    #[test]
    fn planted_seasonal_contrast() {
        let db = db();
        let avg_for = |airport: &str, month: i64| -> f64 {
            let q = SelectQuery::new(XSpec::raw("day"), vec![YSpec::avg("arr_delay")])
                .with_predicate(
                    Predicate::cat_eq("origin", airport)
                        .and(Predicate::num_eq("month", month as f64)),
                );
            let g = db.execute(&q).unwrap().groups[0].clone();
            let ys = &g.ys[0];
            ys.iter().sum::<f64>() / ys.len() as f64
        };
        // airport 0 (JFK) and 5 (DFW) have the June↔December contrast
        for ap in ["JFK", "DFW"] {
            let gap = (avg_for(ap, 12) - avg_for(ap, 6)).abs();
            assert!(gap > 15.0, "{ap} June/Dec arrival gap {gap} too small");
        }
        // airport 1 (SFO) does not
        let gap = (avg_for("SFO", 12) - avg_for("SFO", 6)).abs();
        assert!(gap < 12.0, "SFO June/Dec gap {gap} unexpectedly large");
    }

    #[test]
    fn determinism_and_shape() {
        let cfg = AirlineConfig {
            rows: 2000,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.row(777), b.row(777));
        assert_eq!(a.schema().len(), 12);
        assert_eq!(a.num_rows(), 2000);
    }
}
