//! # zv-datagen
//!
//! Deterministic synthetic twins of the four datasets in the thesis's
//! evaluation (Ch. 7–8). The originals (census-income, airline on-time,
//! Zillow housing) are not redistributable/offline-available, so each
//! generator matches the published schema shape, row counts (scaled by
//! default, `full_scale()` for the paper's sizes), cardinality profile,
//! and — critically — the latent trend structure that the paper's ZQL
//! queries search for. See DESIGN.md, substitution 3.
//!
//! Every generator is a pure function of its config (including the seed):
//! the same config always reproduces the same table, row for row.

pub mod airline;
pub mod census;
pub mod housing;
pub mod sales;
pub mod skew;
pub mod util;

pub use airline::{generate as airline, AirlineConfig};
pub use census::{generate as census, CensusConfig};
pub use housing::{generate as housing, HousingConfig};
pub use sales::{generate as sales, SalesConfig};
