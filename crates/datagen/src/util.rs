//! Shared generator utilities: deterministic per-entity latent parameters
//! and Gaussian noise (Box–Muller, since only `rand` is available).

use rand::rngs::StdRng;
use rand::Rng;

/// SplitMix64 — used to derive stable per-entity latent parameters so
/// that e.g. product #17's trend does not depend on row count.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic latent uniform in [0, 1) for entity `idx` under `tag`.
pub fn latent(seed: u64, tag: u64, idx: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(tag ^ splitmix64(idx)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic latent uniform in [lo, hi).
pub fn latent_in(seed: u64, tag: u64, idx: u64, lo: f64, hi: f64) -> f64 {
    lo + latent(seed, tag, idx) * (hi - lo)
}

/// Standard-normal sample via Box–Muller.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn latent_is_deterministic_and_uniform_ish() {
        assert_eq!(latent(1, 2, 3), latent(1, 2, 3));
        assert_ne!(latent(1, 2, 3), latent(1, 2, 4));
        assert_ne!(latent(1, 2, 3), latent(2, 2, 3));
        let vals: Vec<f64> = (0..1000).map(|i| latent(42, 7, i)).collect();
        let mean = vals.iter().sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(vals.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20000).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn latent_in_respects_bounds() {
        for i in 0..100 {
            let v = latent_in(9, 1, i, -3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }
}
