//! A synthetic table with *positionally clustered* predicate matches —
//! the workload shape that starves a statically sharded scan and that
//! morsel-driven claiming exists to fix. Shared by the `bench_groupby`
//! perf tracker and the criterion `groupby` bench so the regression
//! baseline and the criterion numbers measure the identical workload.

use std::sync::Arc;
use zv_storage::{Column, DataType, Field, Schema, Table};

/// Fraction of the table (leading rows) matched by [`hot_predicate`].
pub const HOT_FRACTION: usize = 8;

/// Distinct group keys in the `key` column.
pub const KEY_CARDINALITY: usize = 500;

/// Build the skewed table: `key = i % 500` (the group axis), `hot = 1`
/// for the first eighth of the rows and `0` after (the clustered,
/// selective filter column), `val = (i % 1013) · 0.25` (an exactly
/// representable measure, so parallel sums can be compared bit-for-bit
/// against the serial scan).
pub fn generate(rows: usize) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("key", DataType::Int),
        Field::new("hot", DataType::Int),
        Field::new("val", DataType::Float),
    ]);
    let columns = vec![
        Column::Int((0..rows).map(|i| (i % KEY_CARDINALITY) as i64).collect()),
        Column::Int(
            (0..rows)
                .map(|i| i64::from(i < rows / HOT_FRACTION))
                .collect(),
        ),
        Column::Float((0..rows).map(|i| (i % 1013) as f64 * 0.25).collect()),
    ];
    Arc::new(Table::from_columns(schema, columns).expect("skew table schema is consistent"))
}

/// The selective predicate whose matches all sit in the leading hot
/// region: `hot = 1`.
pub fn hot_predicate() -> zv_storage::Predicate {
    zv_storage::Predicate::num_eq("hot", 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_cluster_in_the_leading_region() {
        let t = generate(8000);
        assert_eq!(t.num_rows(), 8000);
        let hot = match t.column("hot").unwrap() {
            Column::Int(v) => v.to_vec(),
            _ => panic!("hot is an int column"),
        };
        assert!(hot[..1000].iter().all(|&h| h == 1));
        assert!(hot[1000..].iter().all(|&h| h == 0));
    }
}
