//! Synthetic twin of the Zillow housing dataset used in the user study
//! (thesis Ch. 8: "housing sales data for different cities, counties, and
//! states from 2004–15, with over 245K rows, and 15 attributes"), with
//! the structure the study tasks and the §6.1 example queries look for:
//!
//! * **Jessamine county** (and a planted set of peers) shows a price peak
//!   between 2008 and 2012 (Figure 6.2's drag-and-drop scenario);
//! * among NY cities with rising prices 2004→2015, half have
//!   **foreclosures moving opposite to prices** (Figure 6.3);
//! * some states have **turnover rate opposite to price** (Figure 6.5).

use crate::util::{gaussian, latent_in};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use zv_storage::{CatColumn, Column, DataType, Field, Schema, Table};

/// Configuration for [`generate`].
#[derive(Clone, Debug)]
pub struct HousingConfig {
    pub rows: usize,
    pub states: usize,
    pub counties: usize,
    pub cities: usize,
    pub seed: u64,
}

impl Default for HousingConfig {
    fn default() -> Self {
        HousingConfig {
            rows: 60_000,
            states: 10,
            counties: 50,
            cities: 200,
            seed: 0x201604,
        }
    }
}

impl HousingConfig {
    /// The study's full-scale dataset (245K rows).
    pub fn full_scale() -> Self {
        HousingConfig {
            rows: 245_000,
            ..Default::default()
        }
    }
}

pub const NAMED_STATES: [&str; 10] = ["NY", "CA", "KY", "IL", "TX", "WA", "MA", "FL", "OH", "PA"];

pub fn state_name(i: usize) -> String {
    NAMED_STATES
        .get(i)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("ST{i:02}"))
}

pub fn county_name(i: usize) -> String {
    if i == 0 {
        "Jessamine".to_string()
    } else {
        format!("county_{i:03}")
    }
}

pub fn city_name(i: usize) -> String {
    format!("city_{i:03}")
}

/// Counties planted with the 2008–2012 price peak (includes Jessamine).
pub fn has_price_peak(county: usize) -> bool {
    county.is_multiple_of(7)
}

/// NY cities (index mod states == 0) with rising prices whose
/// foreclosures move opposite.
pub fn has_opposing_foreclosures(city: usize) -> bool {
    city.is_multiple_of(2)
}

/// States whose turnover rate opposes the price trend.
pub fn has_opposing_turnover(state: usize) -> bool {
    state % 3 == 2
}

const TAG_PRICE: u64 = 21;
const TAG_SLOPE: u64 = 22;

/// Generate the dataset (15 attributes).
pub fn generate(cfg: &HousingConfig) -> Arc<Table> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut state = CatColumn::new();
    let mut county = CatColumn::new();
    let mut city = CatColumn::new();
    let mut zip = CatColumn::new();
    for s in 0..cfg.states {
        state.intern(&state_name(s));
    }
    for c in 0..cfg.counties {
        county.intern(&county_name(c));
    }
    for c in 0..cfg.cities {
        city.intern(&city_name(c));
    }
    for z in 0..100 {
        zip.intern(&format!("{:05}", 2000 + z * 731 % 90000));
    }

    let mut years = Vec::with_capacity(cfg.rows);
    let mut months = Vec::with_capacity(cfg.rows);
    let mut quarters = Vec::with_capacity(cfg.rows);
    let mut sold = Vec::with_capacity(cfg.rows);
    let mut listing = Vec::with_capacity(cfg.rows);
    let mut turnover = Vec::with_capacity(cfg.rows);
    let mut foreclosure = Vec::with_capacity(cfg.rows);
    let mut inventory = Vec::with_capacity(cfg.rows);
    let mut dom = Vec::with_capacity(cfg.rows);
    let mut num_sold = Vec::with_capacity(cfg.rows);
    let mut ppsf = Vec::with_capacity(cfg.rows);

    for _ in 0..cfg.rows {
        let ci = rng.gen_range(0..cfg.cities);
        let co = ci % cfg.counties;
        let st = co % cfg.states;
        let year = rng.gen_range(2004..=2015i64);
        let month = rng.gen_range(1..=12i64);
        let t = (year - 2004) as f64;

        let base = latent_in(cfg.seed, TAG_PRICE, ci as u64, 120.0, 450.0); // $k
        let slope = latent_in(cfg.seed, TAG_SLOPE, ci as u64, -8.0, 16.0);
        // 2008–2012 peak: a bump centred on 2010 for planted counties.
        let peak = if has_price_peak(co) {
            let d = (year - 2010) as f64;
            90.0 * (-d * d / 4.0).exp()
        } else {
            0.0
        };
        let price = (base + slope * t + peak + 12.0 * gaussian(&mut rng)).max(30.0);
        let price_trend_sign = if slope >= 0.0 { 1.0 } else { -1.0 };

        // Foreclosures: for planted cities, inverse of the price trend.
        let fc_base = latent_in(cfg.seed, 31, ci as u64, 1.0, 6.0);
        let fc = if has_opposing_foreclosures(ci) {
            (fc_base - price_trend_sign * 0.35 * t + 0.4 * gaussian(&mut rng)).max(0.0)
        } else {
            (fc_base + price_trend_sign * 0.25 * t + 0.4 * gaussian(&mut rng)).max(0.0)
        };
        // Turnover: per-state planted inversion.
        let to_base = latent_in(cfg.seed, 32, st as u64, 3.0, 9.0);
        let to = if has_opposing_turnover(st) {
            (to_base - price_trend_sign * 0.3 * t + 0.3 * gaussian(&mut rng)).max(0.1)
        } else {
            (to_base + price_trend_sign * 0.3 * t + 0.3 * gaussian(&mut rng)).max(0.1)
        };

        state.push_code(st as u32);
        county.push_code(co as u32);
        city.push_code(ci as u32);
        zip.push_code((ci % 100) as u32);
        years.push(year);
        months.push(month);
        quarters.push((month - 1) / 3 + 1);
        sold.push(price);
        listing.push(price * latent_in(cfg.seed, 33, ci as u64, 1.0, 1.12));
        turnover.push(to);
        foreclosure.push(fc);
        inventory.push((200.0 - 8.0 * to + 20.0 * gaussian(&mut rng)).max(5.0));
        dom.push((90.0 - 4.0 * to + 10.0 * gaussian(&mut rng)).max(3.0));
        num_sold.push(rng.gen_range(5..500i64));
        ppsf.push(price / latent_in(cfg.seed, 34, ci as u64, 1.2, 3.0));
    }

    let schema = Schema::new(vec![
        Field::new("state", DataType::Cat),
        Field::new("county", DataType::Cat),
        Field::new("city", DataType::Cat),
        Field::new("zip", DataType::Cat),
        Field::new("year", DataType::Int),
        Field::new("month", DataType::Int),
        Field::new("quarter", DataType::Int),
        Field::new("sold_price", DataType::Float),
        Field::new("listing_price", DataType::Float),
        Field::new("turnover_rate", DataType::Float),
        Field::new("foreclosure_rate", DataType::Float),
        Field::new("inventory", DataType::Float),
        Field::new("days_on_market", DataType::Float),
        Field::new("num_sold", DataType::Int),
        Field::new("price_per_sqft", DataType::Float),
    ]);
    let columns = vec![
        Column::Cat(state),
        Column::Cat(county),
        Column::Cat(city),
        Column::Cat(zip),
        Column::Int(years.into()),
        Column::Int(months.into()),
        Column::Int(quarters.into()),
        Column::Float(sold),
        Column::Float(listing),
        Column::Float(turnover),
        Column::Float(foreclosure),
        Column::Float(inventory),
        Column::Float(dom),
        Column::Int(num_sold.into()),
        Column::Float(ppsf),
    ];
    Arc::new(Table::from_columns(schema, columns).expect("consistent schema"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zv_storage::{BitmapDb, Database, Predicate, SelectQuery, XSpec, YSpec};

    fn db() -> BitmapDb {
        BitmapDb::new(generate(&HousingConfig::default()))
    }

    fn county_prices(db: &BitmapDb, county: &str) -> Vec<(f64, f64)> {
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::avg("sold_price")])
            .with_predicate(Predicate::cat_eq("county", county));
        db.execute(&q).unwrap().groups[0].points(0)
    }

    #[test]
    fn fifteen_attributes_like_the_study() {
        let t = generate(&HousingConfig {
            rows: 1000,
            ..Default::default()
        });
        assert_eq!(t.schema().len(), 15);
    }

    #[test]
    fn jessamine_peaks_between_2008_and_2012() {
        let db = db();
        let pts = county_prices(&db, "Jessamine");
        let at = |y: f64| pts.iter().find(|p| p.0 == y).unwrap().1;
        // peak year clearly above the endpoints
        assert!(
            at(2010.0) > at(2004.0) + 30.0,
            "2010 {} vs 2004 {}",
            at(2010.0),
            at(2004.0)
        );
        assert!(at(2010.0) > at(2015.0) + 30.0);
        // a non-planted county has no such bump
        let pts = county_prices(&db, &county_name(1));
        let at = |y: f64| pts.iter().find(|p| p.0 == y).unwrap().1;
        let bump = at(2010.0) - (at(2004.0) + at(2015.0)) / 2.0;
        assert!(bump.abs() < 40.0, "county_001 unexpected bump {bump}");
    }

    #[test]
    fn peer_counties_share_the_peak() {
        let db = db();
        // county 7 is also planted (7 % 7 == 0)
        let pts = county_prices(&db, &county_name(7));
        let at = |y: f64| pts.iter().find(|p| p.0 == y).unwrap().1;
        assert!(at(2010.0) > at(2004.0) + 30.0);
    }

    #[test]
    fn determinism() {
        let cfg = HousingConfig {
            rows: 800,
            ..Default::default()
        };
        assert_eq!(generate(&cfg).row(11), generate(&cfg).row(11));
    }
}
