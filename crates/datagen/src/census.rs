//! Synthetic twin of the census-income dataset (thesis §7: "a real
//! census-income dataset consisting of 300,000 rows and 40 attributes").
//! The §7 experiments use it for grouped-aggregate workloads with random
//! categorical axes, so what matters is the attribute count and the
//! cardinality profile — both matched here: 40 attributes whose
//! cardinalities range from 2 to ~50, plus numeric measures.

use crate::util::{gaussian, latent_in};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use zv_storage::{CatColumn, Column, DataType, Field, Schema, Table};

/// Configuration for [`generate`].
#[derive(Clone, Debug)]
pub struct CensusConfig {
    pub rows: usize,
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            rows: 50_000,
            seed: 0xCE25,
        }
    }
}

impl CensusConfig {
    /// The paper's full-scale dataset (300K rows).
    pub fn full_scale() -> Self {
        CensusConfig {
            rows: 300_000,
            ..Default::default()
        }
    }
}

/// `(name, cardinality)` for the named demographic attributes.
pub const NAMED_ATTRS: [(&str, usize); 10] = [
    ("workclass", 8),
    ("education", 16),
    ("marital_status", 7),
    ("occupation", 14),
    ("relationship", 6),
    ("race", 5),
    ("sex", 2),
    ("native_country", 40),
    ("citizenship", 4),
    ("income_bracket", 2),
];

/// Generate the dataset: 10 named categorical attributes, 26 filler
/// categorical attributes (card 2..50), and 4 numeric measures = 40 cols.
pub fn generate(cfg: &CensusConfig) -> Arc<Table> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut fields: Vec<Field> = Vec::new();
    let mut cats: Vec<CatColumn> = Vec::new();
    let mut cards: Vec<usize> = Vec::new();

    for (name, card) in NAMED_ATTRS {
        let mut c = CatColumn::new();
        for v in 0..card {
            c.intern(&format!("{name}_{v}"));
        }
        fields.push(Field::new(name, DataType::Cat));
        cats.push(c);
        cards.push(card);
    }
    for i in 0..26 {
        let card = 2 + (crate::util::splitmix64(cfg.seed ^ (i as u64 + 500)) % 49) as usize;
        let name = format!("attr_{:02}", i + 11);
        let mut c = CatColumn::new();
        for v in 0..card {
            c.intern(&format!("v{v}"));
        }
        fields.push(Field::new(name, DataType::Cat));
        cats.push(c);
        cards.push(card);
    }

    let mut ages: Vec<i64> = Vec::with_capacity(cfg.rows);
    let mut hours: Vec<i64> = Vec::with_capacity(cfg.rows);
    let mut wages: Vec<f64> = Vec::with_capacity(cfg.rows);
    let mut gains: Vec<f64> = Vec::with_capacity(cfg.rows);

    for _ in 0..cfg.rows {
        // Categorical draws are skewed (Zipf-ish) like real census data.
        for (c, &card) in cats.iter_mut().zip(&cards) {
            let u: f64 = rng.gen::<f64>();
            let code = ((u * u) * card as f64) as usize;
            c.push_code(code.min(card - 1) as u32);
        }
        let age = rng.gen_range(17..=90i64);
        let hour = rng.gen_range(0..=99i64);
        let wage = (15.0 + 0.4 * (age as f64 - 17.0) + 8.0 * gaussian(&mut rng)).max(0.0);
        let gain = if rng.gen_range(0..20) == 0 {
            latent_in(cfg.seed, 3, rng.gen::<u32>() as u64, 1000.0, 99_999.0)
        } else {
            0.0
        };
        ages.push(age);
        hours.push(hour);
        wages.push(wage);
        gains.push(gain);
    }

    fields.push(Field::new("age", DataType::Int));
    fields.push(Field::new("hours_per_week", DataType::Int));
    fields.push(Field::new("wage_per_hour", DataType::Float));
    fields.push(Field::new("capital_gains", DataType::Float));

    let mut columns: Vec<Column> = cats.into_iter().map(Column::Cat).collect();
    columns.push(Column::Int(ages.into()));
    columns.push(Column::Int(hours.into()));
    columns.push(Column::Float(wages));
    columns.push(Column::Float(gains));

    Arc::new(Table::from_columns(Schema::new(fields), columns).expect("consistent schema"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_attributes_like_the_paper() {
        let t = generate(&CensusConfig {
            rows: 1000,
            ..Default::default()
        });
        assert_eq!(t.schema().len(), 40);
        assert_eq!(t.num_rows(), 1000);
        assert_eq!(t.categorical_names().len(), 36);
        assert_eq!(t.numeric_names().len(), 4);
    }

    #[test]
    fn cardinalities_match_spec() {
        let t = generate(&CensusConfig {
            rows: 20_000,
            ..Default::default()
        });
        for (name, card) in NAMED_ATTRS {
            let c = t.column(name).unwrap().as_cat().unwrap();
            assert_eq!(c.cardinality(), card, "{name}");
        }
    }

    #[test]
    fn skewed_distribution() {
        let t = generate(&CensusConfig {
            rows: 20_000,
            ..Default::default()
        });
        let c = t.column("native_country").unwrap().as_cat().unwrap();
        let mut counts = vec![0usize; c.cardinality()];
        for code in c.codes().to_vec() {
            counts[code as usize] += 1;
        }
        // The first value should be far more common than the last.
        assert!(counts[0] > counts[c.cardinality() - 1] * 3);
    }

    #[test]
    fn determinism() {
        let cfg = CensusConfig {
            rows: 500,
            ..Default::default()
        };
        assert_eq!(generate(&cfg).row(42), generate(&cfg).row(42));
    }
}
