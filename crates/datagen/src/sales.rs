//! The synthetic product-sales dataset — the fictitious "GlobalMart"
//! relation every ZQL example in the thesis queries (product / location /
//! year / month / sales / profit, §2–§3), and the synthetic evaluation
//! dataset of §7 ("10M rows ... product, size, weight, city, country,
//! category, month, year, profit, and revenue").
//!
//! The generator plants the latent structure the paper's queries probe:
//!
//! * every 4th product has **positive sales trend in the US and negative
//!   in the UK** (the Table 5.1 / Table 2.3 targets);
//! * every 5th product has a **profit trend opposite to its sales trend**
//!   (the §3.9 "discrepancy" targets);
//! * the `stapler` is a stable high-profit product whose trend several
//!   other products imitate (similarity-search targets, Table 3.13).

use crate::util::{gaussian, latent_in};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use zv_storage::{CatColumn, Column, DataType, Field, Schema, Table};

/// Configuration for [`generate`].
#[derive(Clone, Debug)]
pub struct SalesConfig {
    pub rows: usize,
    pub products: usize,
    pub locations: usize,
    pub cities: usize,
    pub categories: usize,
    /// Inclusive year span.
    pub years: (i64, i64),
    pub seed: u64,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            rows: 100_000,
            products: 100,
            locations: 10,
            cities: 50,
            categories: 8,
            years: (2010, 2016),
            seed: 0xC0FFEE,
        }
    }
}

impl SalesConfig {
    /// The paper's full-scale synthetic dataset (10M rows).
    pub fn full_scale() -> Self {
        SalesConfig {
            rows: 10_000_000,
            products: 1000,
            cities: 500,
            ..Default::default()
        }
    }
}

/// Named products, first in the dictionary (the thesis's examples).
pub const NAMED_PRODUCTS: [&str; 8] = [
    "stapler", "chair", "desk", "table", "printer", "notebook", "pen", "monitor",
];

/// Named locations, first in the dictionary.
pub const NAMED_LOCATIONS: [&str; 10] = [
    "US",
    "UK",
    "Canada",
    "Germany",
    "France",
    "India",
    "China",
    "Japan",
    "Brazil",
    "Australia",
];

pub fn product_name(i: usize) -> String {
    NAMED_PRODUCTS
        .get(i)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("product_{i:04}"))
}

pub fn location_name(i: usize) -> String {
    NAMED_LOCATIONS
        .get(i)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("country_{i:03}"))
}

/// True if product `p` is planted with opposing sales/profit trends
/// (strong positive sales everywhere, declining profit). Takes precedence
/// over the US/UK classes below; the stapler (p = 0) is excluded.
pub fn has_profit_discrepancy(p: usize) -> bool {
    p != 0 && p.is_multiple_of(5)
}

/// True if product `p` is planted as "sales up in US, down in UK".
pub fn is_us_up_uk_down(p: usize) -> bool {
    p != 0 && !has_profit_discrepancy(p) && p.is_multiple_of(4)
}

/// True if product `p` is planted as the mirror (US down, UK up).
pub fn is_us_down_uk_up(p: usize) -> bool {
    !has_profit_discrepancy(p) && p % 4 == 1
}

const TAG_BASE: u64 = 1;
const TAG_LOC_SLOPE: u64 = 2;
const TAG_SEASON: u64 = 3;
const TAG_MARGIN: u64 = 4;

/// Sales slope for `(product, location)` in units per year.
fn sales_slope(seed: u64, p: usize, l: usize) -> f64 {
    let key = (p * 1000 + l) as u64;
    if p == 0 {
        // the stapler: steady moderate growth everywhere
        return latent_in(seed, TAG_LOC_SLOPE, key, 1.0, 3.0);
    }
    if has_profit_discrepancy(p) {
        // strong growth everywhere, so the opposing profit trend is
        // unambiguous at any aggregation level
        return latent_in(seed, TAG_LOC_SLOPE, key, 4.0, 10.0);
    }
    // Planted structure for US (location 0) and UK (location 1).
    if is_us_up_uk_down(p) {
        if l == 0 {
            return latent_in(seed, TAG_LOC_SLOPE, key, 4.0, 12.0);
        }
        if l == 1 {
            return latent_in(seed, TAG_LOC_SLOPE, key, -12.0, -4.0);
        }
    } else if is_us_down_uk_up(p) {
        // the mirror image, so the intersection query is non-trivial
        if l == 0 {
            return latent_in(seed, TAG_LOC_SLOPE, key, -12.0, -4.0);
        }
        if l == 1 {
            return latent_in(seed, TAG_LOC_SLOPE, key, 4.0, 12.0);
        }
    }
    latent_in(seed, TAG_LOC_SLOPE, key, -3.0, 3.0)
}

/// Profit slope for a product, given its aggregate sales slope.
fn profit_slope(seed: u64, p: usize, agg_sales_slope: f64) -> f64 {
    if has_profit_discrepancy(p) {
        // strongly declining profit against strongly rising sales
        -latent_in(seed, TAG_MARGIN, p as u64, 2.0, 5.0)
    } else {
        agg_sales_slope * latent_in(seed, TAG_MARGIN, p as u64, 0.3, 0.6)
    }
}

/// Generate the dataset.
pub fn generate(cfg: &SalesConfig) -> Arc<Table> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (y0, y1) = cfg.years;
    assert!(y1 >= y0);
    let n_years = (y1 - y0 + 1) as usize;

    let mut product = CatColumn::new();
    let mut location = CatColumn::new();
    let mut city = CatColumn::new();
    let mut category = CatColumn::new();
    let mut size = CatColumn::new();
    for p in 0..cfg.products {
        product.intern(&product_name(p));
    }
    for l in 0..cfg.locations {
        location.intern(&location_name(l));
    }
    for c in 0..cfg.cities {
        city.intern(&format!("city_{c:03}"));
    }
    for c in 0..cfg.categories {
        category.intern(&format!("category_{c}"));
    }
    for s in ["S", "M", "L"] {
        size.intern(s);
    }

    let mut years: Vec<i64> = Vec::with_capacity(cfg.rows);
    let mut months: Vec<i64> = Vec::with_capacity(cfg.rows);
    let mut weights: Vec<f64> = Vec::with_capacity(cfg.rows);
    let mut sales: Vec<f64> = Vec::with_capacity(cfg.rows);
    let mut profits: Vec<f64> = Vec::with_capacity(cfg.rows);

    // Pre-compute per-product latent parameters.
    let base: Vec<f64> = (0..cfg.products)
        .map(|p| latent_in(cfg.seed, TAG_BASE, p as u64, 60.0, 140.0))
        .collect();
    let season_amp: Vec<f64> = (0..cfg.products)
        .map(|p| latent_in(cfg.seed, TAG_SEASON, p as u64, 0.0, 10.0))
        .collect();
    // Aggregate (location-averaged) sales slope per product, used for the
    // product-level profit trend.
    let agg_slope: Vec<f64> = (0..cfg.products)
        .map(|p| {
            (0..cfg.locations)
                .map(|l| sales_slope(cfg.seed, p, l))
                .sum::<f64>()
                / cfg.locations as f64
        })
        .collect();
    let p_slope: Vec<f64> = (0..cfg.products)
        .map(|p| profit_slope(cfg.seed, p, agg_slope[p]))
        .collect();

    // Rows are assigned round-robin over (product, location, year) so per-
    // cell row counts are balanced (±1): SUM aggregates then reflect the
    // planted per-row trends instead of row-count noise. Month, city and
    // the measures stay random.
    use rand::Rng;
    for i in 0..cfg.rows {
        let p = i % cfg.products;
        let l = (i / cfg.products) % cfg.locations;
        let year = y0 + ((i / (cfg.products * cfg.locations)) % n_years) as i64;
        let ci = rng.gen_range(0..cfg.cities);
        let month = rng.gen_range(1..=12i64);
        let t = (year - y0) as f64 + (month - 1) as f64 / 12.0;

        let seasonal = season_amp[p] * (month as f64 / 12.0 * std::f64::consts::TAU).sin();
        let s = (base[p] + sales_slope(cfg.seed, p, l) * t + seasonal + 5.0 * gaussian(&mut rng))
            .max(0.0);
        // Stapler (product 0): stable, very profitable (§3.9 Query 1).
        let pr = if p == 0 {
            0.8 * base[p] + 2.0 * t + 2.0 * gaussian(&mut rng)
        } else {
            0.3 * base[p] + p_slope[p] * t + 3.0 * gaussian(&mut rng)
        };

        product.push_code(p as u32);
        location.push_code(l as u32);
        city.push_code(ci as u32);
        category.push_code((p % cfg.categories) as u32);
        size.push_code((p % 3) as u32);
        years.push(year);
        months.push(month);
        weights.push(latent_in(cfg.seed, 99, p as u64, 1.0, 100.0));
        sales.push(s);
        profits.push(pr);
    }

    let schema = Schema::new(vec![
        Field::new("product", DataType::Cat),
        Field::new("category", DataType::Cat),
        Field::new("location", DataType::Cat),
        Field::new("city", DataType::Cat),
        Field::new("size", DataType::Cat),
        Field::new("year", DataType::Int),
        Field::new("month", DataType::Int),
        Field::new("weight", DataType::Float),
        Field::new("sales", DataType::Float),
        Field::new("profit", DataType::Float),
    ]);
    let columns = vec![
        Column::Cat(product),
        Column::Cat(category),
        Column::Cat(location),
        Column::Cat(city),
        Column::Cat(size),
        Column::Int(years.into()),
        Column::Int(months.into()),
        Column::Float(weights),
        Column::Float(sales),
        Column::Float(profits),
    ];
    Arc::new(Table::from_columns(schema, columns).expect("generator schema is consistent"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zv_analytics::{trend, Series};
    use zv_storage::{BitmapDb, Database, Predicate, SelectQuery, XSpec, YSpec};

    fn small() -> Arc<Table> {
        generate(&SalesConfig {
            rows: 60_000,
            products: 24,
            ..Default::default()
        })
    }

    fn product_trend(db: &BitmapDb, product: &str, location: &str, measure: &str) -> f64 {
        let q = SelectQuery::new(XSpec::raw("year"), vec![YSpec::sum(measure)]).with_predicate(
            Predicate::cat_eq("product", product).and(if location.is_empty() {
                Predicate::True
            } else {
                Predicate::cat_eq("location", location)
            }),
        );
        let rt = db.execute(&q).unwrap();
        let g = &rt.groups[0];
        trend(&Series::new(g.points(0)))
    }

    #[test]
    fn shape_and_determinism() {
        let cfg = SalesConfig {
            rows: 5000,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.num_rows(), 5000);
        assert_eq!(a.schema().len(), 10);
        assert_eq!(
            a.row(123),
            b.row(123),
            "same seed must reproduce identical rows"
        );
        let c = generate(&SalesConfig { seed: 1, ..cfg });
        assert_ne!(a.row(123), c.row(123), "different seed should differ");
    }

    #[test]
    fn planted_us_up_uk_down_products_have_those_trends() {
        let db = BitmapDb::new(small());
        for p in (0..24).filter(|&p| is_us_up_uk_down(p)) {
            let name = product_name(p);
            let us = product_trend(&db, &name, "US", "sales");
            let uk = product_trend(&db, &name, "UK", "sales");
            assert!(us > 0.0, "{name} US trend should be positive, got {us}");
            assert!(uk < 0.0, "{name} UK trend should be negative, got {uk}");
        }
        // And a mirror product has the opposite pattern.
        let name = product_name(1);
        assert!(is_us_down_uk_up(1));
        assert!(product_trend(&db, &name, "US", "sales") < 0.0);
        assert!(product_trend(&db, &name, "UK", "sales") > 0.0);
    }

    #[test]
    fn planted_profit_discrepancy() {
        let db = BitmapDb::new(small());
        for p in (0..24).filter(|&p| has_profit_discrepancy(p)) {
            let name = product_name(p);
            let s = product_trend(&db, &name, "", "sales");
            let pr = product_trend(&db, &name, "", "profit");
            assert!(s > 0.0, "{name} sales trend should rise, got {s}");
            assert!(pr < 0.0, "{name} profit trend should fall, got {pr}");
        }
    }

    #[test]
    fn planted_classes_are_disjoint() {
        for p in 0..100 {
            let n = [
                has_profit_discrepancy(p),
                is_us_up_uk_down(p),
                is_us_down_uk_up(p),
            ]
            .iter()
            .filter(|&&b| b)
            .count();
            assert!(n <= 1, "product {p} in {n} classes");
        }
        assert!(!has_profit_discrepancy(0), "the stapler is its own class");
        assert!(!is_us_up_uk_down(0));
    }

    #[test]
    fn stapler_is_profitable_and_growing() {
        let db = BitmapDb::new(small());
        let t = product_trend(&db, "stapler", "", "profit");
        assert!(t > 0.0, "stapler profit trend {t}");
    }

    #[test]
    fn dictionary_contains_named_entities() {
        let t = small();
        let products = t.column("product").unwrap().as_cat().unwrap();
        assert_eq!(products.decode(0), "stapler");
        assert_eq!(products.decode(1), "chair");
        let locs = t.column("location").unwrap().as_cat().unwrap();
        assert_eq!(locs.decode(0), "US");
        assert_eq!(locs.decode(1), "UK");
    }
}
