//! Cross-crate integration: generators → storage engines → ZQL →
//! analytics, exercised through the facade crate the way a downstream
//! user would.

use std::sync::Arc;
use zenvisage::zql::{self, OptLevel, TaskSpec, ZqlEngine};
use zenvisage::zv_analytics::{trend, Series};
use zenvisage::zv_datagen::{airline, housing, AirlineConfig, HousingConfig};
use zenvisage::zv_storage::{BitmapDb, BitmapDbConfig, DynDatabase, ScanDb};

fn airline_db() -> DynDatabase {
    Arc::new(BitmapDb::new(airline::generate(&AirlineConfig {
        rows: 60_000,
        airports: 15,
        ..Default::default()
    })))
}

#[test]
fn table_7_1_query_finds_increasing_delay_airports() {
    let mut engine = ZqlEngine::new(airline_db());
    engine.registry_mut().register_value_set(
        "OA",
        (0..10).map(|a| airline::airport_name(a).into()).collect(),
    );
    let out = engine
        .execute_text(
            "name | x | y | z | viz | process\n\
             f1 | 'year' | 'dep_delay' | v1 <- 'origin'.OA | bar.(y=agg('avg')) | v2 <- argany(v1)[t > 0] T(f1)\n\
             f2 | 'year' | 'weather_delay' | v1 | bar.(y=agg('avg')) | v3 <- argany(v1)[t > 0] T(f2)\n\
             *f3 | 'year' | y3 <- {'dep_delay', 'weather_delay'} | v4 <- (v2.range | v3.range) | bar.(y=agg('avg')) |",
        )
        .unwrap();
    assert!(!out.visualizations.is_empty());
    // Airports 0,3,6,9 have planted dep-delay growth; 0,4,8 weather.
    // Every returned airport must be in the union (modulo noise, the
    // planted effects are strong at these sizes).
    for viz in &out.visualizations {
        let airport = viz.label.strip_prefix("origin=").unwrap();
        let idx = (0..15)
            .find(|&a| airline::airport_name(a) == airport)
            .unwrap();
        assert!(
            airline::has_increasing_dep_delay(idx) || airline::has_increasing_weather_delay(idx),
            "{airport} not planted with any increasing delay"
        );
    }
    // Both measures come back for each qualifying airport.
    assert_eq!(out.visualizations.len() % 2, 0);
}

#[test]
fn table_7_2_query_finds_seasonal_airports() {
    let mut engine = ZqlEngine::new(airline_db());
    engine.registry_mut().register_value_set(
        "DA",
        (0..10).map(|a| airline::airport_name(a).into()).collect(),
    );
    // The June↔December discrepancy is a *magnitude* difference, so D
    // must compare raw values — the default z-score normalization would
    // deliberately ignore level shifts ("the user is free to specify
    // their own variants", §3.8).
    engine.registry_mut().set_distance_kind(
        zenvisage::zv_analytics::DistanceKind::Euclidean,
        zenvisage::zv_analytics::Normalize::None,
    );
    let out = engine
        .execute_text(
            "name | x | y | z | constraints | viz | process\n\
             f1 | 'day' | 'arr_delay' | v1 <- 'origin'.DA | month=6 | bar.(y=agg('avg')) |\n\
             f2 | 'day' | 'arr_delay' | v1 | month=12 | bar.(y=agg('avg')) | v2 <- argmax(v1)[k=3] D(f1, f2)\n\
             *f3 | 'month' | 'arr_delay' | v2 | | bar.(y=agg('avg')) |",
        )
        .unwrap();
    assert_eq!(out.visualizations.len(), 3);
    // The top discrepancy airports should be the planted seasonal ones
    // (0 and 5 within OA; i.e. JFK, DFW).
    let first = out.visualizations[0].label.strip_prefix("origin=").unwrap();
    let idx = (0..15)
        .find(|&a| airline::airport_name(a) == first)
        .unwrap();
    assert!(
        airline::has_seasonal_arr_contrast(idx),
        "top answer {first} should be a planted seasonal airport"
    );
}

#[test]
fn scan_backend_is_interchangeable() {
    // "zenvisage can use as a backend any traditional relational
    // database" — same ZQL, same results, different engine.
    let table = airline::generate(&AirlineConfig {
        rows: 20_000,
        airports: 8,
        ..Default::default()
    });
    let text = "name | x | y | z | viz\n\
                *f1 | 'year' | 'dep_delay' | v1 <- 'origin'.* | bar.(y=agg('avg'))";
    let bitmap_out = ZqlEngine::new(Arc::new(BitmapDb::new(table.clone())))
        .execute_text(text)
        .unwrap();
    let scan_out = ZqlEngine::new(Arc::new(ScanDb::new(table)))
        .execute_text(text)
        .unwrap();
    assert_eq!(
        bitmap_out.visualizations.len(),
        scan_out.visualizations.len()
    );
    for (a, b) in bitmap_out
        .visualizations
        .iter()
        .zip(&scan_out.visualizations)
    {
        assert_eq!(a.label, b.label);
        assert_eq!(a.series, b.series);
    }
}

#[test]
fn housing_jessamine_similarity_pipeline() {
    // The user-study task, end to end: sketch the peak, find Jessamine.
    let table = housing::generate(&HousingConfig {
        rows: 30_000,
        ..Default::default()
    });
    let engine = ZqlEngine::new(Arc::new(BitmapDb::new(table)));
    let spec =
        TaskSpec::new("year", "sold_price", "county").with_agg(zenvisage::zv_storage::Agg::Avg);
    let sketch = zv_study::peak_sketch(0.0);
    let out = zql::similarity_search(&engine, &spec, &sketch, 5).unwrap();
    assert_eq!(out.visualizations.len(), 5);
    // All top matches must actually peak around 2010 (rise then fall).
    for viz in &out.visualizations {
        let pts = viz.series.points();
        let early: Vec<(f64, f64)> = pts.iter().copied().filter(|p| p.0 <= 2010.0).collect();
        let late: Vec<(f64, f64)> = pts.iter().copied().filter(|p| p.0 >= 2010.0).collect();
        let rise = trend(&Series::new(early));
        let fall = trend(&Series::new(late));
        assert!(
            rise > 0.0 && fall < 0.0,
            "{} does not peak: rise {rise}, fall {fall}",
            viz.label
        );
    }
    use zv_study::peak_sketch;
    let _ = peak_sketch; // silence unused when cfg differs
}

#[test]
fn opt_levels_agree_on_airline_workload() {
    let table = airline::generate(&AirlineConfig {
        rows: 30_000,
        airports: 10,
        ..Default::default()
    });
    let db: DynDatabase = Arc::new(BitmapDb::new(table));
    let text = "name | x | y | z | constraints | viz | process\n\
        f1 | 'day' | 'arr_delay' | v1 <- 'origin'.* | month=6 | bar.(y=agg('avg')) |\n\
        f2 | 'day' | 'arr_delay' | v1 | month=12 | bar.(y=agg('avg')) | v2 <- argmax(v1)[k=3] D(f1, f2)\n\
        *f3 | 'month' | 'arr_delay' | v2 | | bar.(y=agg('avg')) |";
    let mut outputs = Vec::new();
    for opt in [
        OptLevel::NoOpt,
        OptLevel::IntraLine,
        OptLevel::IntraTask,
        OptLevel::InterTask,
    ] {
        let engine = ZqlEngine::with_opt_level(db.clone(), opt);
        let out = engine.execute_text(text).unwrap();
        outputs.push(
            out.visualizations
                .iter()
                .map(|v| (v.label.clone(), v.series.clone()))
                .collect::<Vec<_>>(),
        );
    }
    for w in outputs.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

#[test]
fn recommendation_panel_on_airline() {
    let engine = ZqlEngine::new(airline_db());
    let spec =
        TaskSpec::new("year", "dep_delay", "origin").with_agg(zenvisage::zv_storage::Agg::Avg);
    let recs = zql::recommend(&engine, &spec).unwrap();
    assert_eq!(recs.len(), 5);
    // Diverse: both increasing and decreasing delay profiles represented.
    let trends: Vec<f64> = recs.iter().map(|v| trend(&v.series)).collect();
    assert!(
        trends.iter().any(|&t| t > 0.0) && trends.iter().any(|&t| t < 0.0),
        "{trends:?}"
    );
}

#[test]
fn csv_import_to_zql_roundtrip() {
    // A user bringing their own CSV, end to end.
    let csv = "\
year,team,score
2019,red,10
2019,blue,4
2020,red,12
2020,blue,8
2021,red,15
2021,blue,16
";
    let table = zenvisage::zv_storage::Table::from_csv(csv).unwrap();
    let engine = ZqlEngine::new(Arc::new(BitmapDb::new(Arc::new(table))));
    let out = engine
        .execute_text(
            "name | x | y | z | viz | process\n\
             f1 | 'year' | 'score' | v1 <- 'team'.* | bar.(y=agg('sum')) | v2 <- argmax(v1)[k=1] T(f1)\n\
             *f2 | 'year' | 'score' | v2 | bar.(y=agg('sum')) |",
        )
        .unwrap();
    // blue grows 4 → 16; red grows 10 → 15; blue's slope is higher.
    assert_eq!(out.visualizations[0].label, "team=blue");
}

#[test]
fn interactive_session_replay_hits_the_result_cache() {
    // The paper's headline interaction: a user sketches a pattern, gets
    // matches, tweaks nothing, and re-runs (or another user explores the
    // same slice). From the second run on, the engine-level cache must
    // answer every canonical query without touching the table.
    let table = housing::generate(&HousingConfig {
        rows: 30_000,
        ..Default::default()
    });
    let engine = ZqlEngine::new(Arc::new(BitmapDb::new(table)));
    let spec =
        TaskSpec::new("year", "sold_price", "county").with_agg(zenvisage::zv_storage::Agg::Avg);
    let sketch = zv_study::peak_sketch(0.0);

    let runs: Vec<_> = (0..3)
        .map(|_| zql::similarity_search(&engine, &spec, &sketch, 5).unwrap())
        .collect();
    // Identical answers every time.
    for run in &runs[1..] {
        assert_eq!(run.visualizations.len(), runs[0].visualizations.len());
        for (a, b) in runs[0].visualizations.iter().zip(&run.visualizations) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.series, b.series);
        }
    }
    // The first run scans; replays are served from the result cache.
    assert!(runs[0].report.rows_scanned > 0);
    for run in &runs[1..] {
        assert!(run.report.cache_hits > 0, "replay must report cache hits");
        assert!(
            run.report.rows_scanned < runs[0].report.rows_scanned,
            "replay must scan strictly fewer rows ({} !< {})",
            run.report.rows_scanned,
            runs[0].report.rows_scanned
        );
        assert_eq!(
            run.report.rows_scanned, 0,
            "identical replays should not scan at all"
        );
        assert_eq!(run.report.cache_misses, 0);
    }
}

#[test]
fn result_cache_is_transparent_at_every_opt_level() {
    // Cached and cache-bypassed engines must render identical
    // visualizations at every batching level, cold and warm.
    let table = airline::generate(&AirlineConfig {
        rows: 20_000,
        airports: 8,
        ..Default::default()
    });
    let text = "name | x | y | z | constraints | viz | process\n\
        f1 | 'day' | 'arr_delay' | v1 <- 'origin'.* | month=6 | bar.(y=agg('avg')) |\n\
        f2 | 'day' | 'arr_delay' | v1 | month=12 | bar.(y=agg('avg')) | v2 <- argmax(v1)[k=3] D(f1, f2)\n\
        *f3 | 'month' | 'arr_delay' | v2 | | bar.(y=agg('avg')) |";
    for opt in [
        OptLevel::NoOpt,
        OptLevel::IntraLine,
        OptLevel::IntraTask,
        OptLevel::InterTask,
    ] {
        let cached = ZqlEngine::with_opt_level(Arc::new(BitmapDb::new(table.clone())), opt);
        let bypass = ZqlEngine::with_opt_level(
            Arc::new(BitmapDb::with_config(
                table.clone(),
                BitmapDbConfig::uncached(),
            )),
            opt,
        );
        let cold = cached.execute_text(text).unwrap();
        let warm = cached.execute_text(text).unwrap();
        let reference = bypass.execute_text(text).unwrap();
        for (run, name) in [(&cold, "cold"), (&warm, "warm")] {
            assert_eq!(
                run.visualizations.len(),
                reference.visualizations.len(),
                "{opt:?}/{name}"
            );
            for (a, b) in run.visualizations.iter().zip(&reference.visualizations) {
                assert_eq!(a.label, b.label, "{opt:?}/{name}");
                assert_eq!(a.series, b.series, "{opt:?}/{name}");
            }
        }
        assert!(warm.report.cache_hits > 0, "{opt:?}: warm run must hit");
        assert_eq!(
            warm.report.rows_scanned, 0,
            "{opt:?}: warm run must not scan"
        );
    }
}

#[test]
fn appends_flow_through_the_whole_stack() {
    // Mutations through the `Database` trait must be visible to ZQL and
    // must not leave stale cached answers anywhere in the stack.
    let csv = "\
year,team,score
2019,red,10
2020,red,12
2021,red,15
";
    let table = zenvisage::zv_storage::Table::from_csv(csv).unwrap();
    let db: DynDatabase = Arc::new(BitmapDb::new(Arc::new(table)));
    let engine = ZqlEngine::new(db.clone());
    let text = "name | x | y | z | viz\n\
        *f1 | 'year' | 'score' | v1 <- 'team'.* | bar.(y=agg('sum'))";
    let before = engine.execute_text(text).unwrap();
    assert_eq!(before.visualizations.len(), 1);

    use zenvisage::zv_storage::Value;
    db.append_rows(&[
        vec![Value::Int(2019), Value::str("blue"), Value::Int(4)],
        vec![Value::Int(2020), Value::str("blue"), Value::Int(8)],
        vec![Value::Int(2021), Value::str("blue"), Value::Int(16)],
    ])
    .unwrap();
    let after = engine.execute_text(text).unwrap();
    assert_eq!(
        after.visualizations.len(),
        2,
        "the new team must appear as a fresh slice"
    );
    let blue = after
        .visualizations
        .iter()
        .find(|v| v.label == "team=blue")
        .expect("blue series present");
    assert_eq!(blue.series.points().len(), 3);
}

#[test]
fn database_stats_flow_through_engine() {
    let db = airline_db();
    let engine = ZqlEngine::new(db.clone());
    let before = db.stats().snapshot();
    let _ = engine
        .execute_text("name | x | y\n*f1 | 'year' | 'dep_delay'")
        .unwrap();
    let delta = db.stats().snapshot().since(&before);
    assert_eq!(delta.queries, 1);
    assert!(delta.rows_scanned > 0);
}
