//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A wall-clock benchmark harness exposing the subset of the criterion
//! API this workspace uses: `Criterion`, `benchmark_group` /
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark
//! adaptively calibrates an iteration count so a sample lasts ≥ ~2 ms,
//! takes `sample_size` samples, and reports mean / median / min.
//!
//! Extra knobs (all optional):
//! * `--save-json <path>` or `CRITERION_JSON=<path>` — dump all results
//!   as JSON (used by the perf-tracking tooling).
//! * `--quick` or `CRITERION_QUICK=1` — 3 samples, minimal calibration,
//!   for CI smoke runs.
//! * positional filter args — only run benchmarks whose full id contains
//!   one of the filters (criterion-compatible behaviour).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one parameterized benchmark: `function/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// One measured benchmark, kept for the JSON dump.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub id: String,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub min_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// `iter_batched`-lite: setup excluded from timing.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

struct Settings {
    quick: bool,
    filters: Vec<String>,
    json_path: Option<String>,
}

impl Settings {
    fn from_env_and_args() -> Settings {
        let mut quick = std::env::var("CRITERION_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut json_path = std::env::var("CRITERION_JSON").ok();
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--save-json" => json_path = args.next(),
                "--quick" => quick = true,
                // Flags cargo-bench forwards that we accept silently.
                "--bench" | "--test" => {}
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Settings {
            quick,
            filters,
            json_path,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// The harness entry point.
pub struct Criterion {
    settings: Settings,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_env_and_args(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        self.run_one(id.full.clone(), 10, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        if !self.settings.matches(&id) {
            return;
        }
        let quick = self.settings.quick;
        let samples = if quick { 3 } else { sample_size.max(3) };
        // Calibrate: grow the iteration count until one sample ≥ target.
        let target = if quick {
            Duration::from_micros(200)
        } else {
            Duration::from_millis(2)
        };
        let mut iters: u64 = 1;
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        loop {
            b.iters = iters;
            f(&mut b);
            if b.elapsed >= target || iters >= 1 << 20 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (target.as_secs_f64() / b.elapsed.as_secs_f64())
                    .ceil()
                    .max(2.0) as u64
            };
            iters = iters.saturating_mul(grow).min(1 << 20);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            b.iters = iters;
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:<50} time: [{} {} {}]  ({} samples × {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(per_iter[per_iter.len() - 1]),
            samples,
            iters
        );
        self.results.push(BenchResult {
            id,
            mean_ns: mean,
            median_ns: median,
            min_ns: min,
            samples,
            iters_per_sample: iters,
        });
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {
        if let Some(path) = &self.settings.json_path {
            let json = results_to_json(&self.results);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("criterion: failed to write {path}: {e}");
            } else {
                println!("criterion: wrote {} results to {path}", self.results.len());
            }
        }
    }
}

/// Render results as a JSON array (no external serializer available).
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": {:?}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.id,
            r.mean_ns,
            r.median_ns,
            r.min_ns,
            r.samples,
            r.iters_per_sample,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full);
        let n = self.sample_size;
        self.parent.run_one(full, n, f);
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.full);
        let n = self.sample_size;
        self.parent.run_one(full, n, |b| f(b, input));
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_records() {
        let mut c = Criterion {
            settings: Settings {
                quick: true,
                filters: vec![],
                json_path: None,
            },
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4, |b, &n| {
            b.iter(|| (0..n).sum::<i32>())
        });
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert!(c.results().iter().all(|r| r.min_ns >= 0.0));
        let json = results_to_json(c.results());
        assert!(json.contains("\"g/noop\"") && json.contains("\"g/param/4\""));
    }
}
