//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` /
//! `Rng::gen` over primitive integer and float types. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which
//! is the only property the synthetic data generators and tests rely on.

/// Types that can be produced uniformly from raw generator output.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_in(rng: &mut impl RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
    fn sample_any(rng: &mut impl RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in(rng: &mut impl RngCore, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as i128) - (lo as i128) + 1
                } else {
                    (hi as i128) - (lo as i128)
                };
                assert!(span > 0, "empty range in gen_range");
                // Modulo bias is ≤ span/2^64 — irrelevant for test data.
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + r) as $t
            }
            #[inline]
            fn sample_any(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in(rng: &mut impl RngCore, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi), "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = lo as f64 + unit * (hi as f64 - lo as f64);
                // Guard against landing exactly on an exclusive upper bound.
                if !_inclusive && v as $t >= hi { lo } else { v as $t }
            }
            #[inline]
            fn sample_any(rng: &mut impl RngCore) -> Self {
                ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi, true)
    }
}

/// The user-facing sampling interface (rand 0.8 `Rng` subset).
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_any(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface (rand 0.8 `SeedableRng` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 (the same construction the real
    /// `rand`'s small RNGs use). Not cryptographic; deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mean = (0..20_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
