//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! A shrinking-free property-testing core exposing the subset of the real
//! API this workspace uses: [`Strategy`] over ranges / tuples / `Just` /
//! `prop_map` / boxed one-of, [`collection::vec`], regex-subset string
//! strategies, `ProptestConfig::with_cases`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros. Cases are generated from a deterministic
//! per-test seed; failures report the case number but are not minimized.

pub mod test_runner {
    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }

        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }
}

pub use test_runner::{ProptestConfig, TestRng};

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of values of `Self::Value`. Object-safe for boxing; the
/// combinators are `Sized`-only.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> strategy::FlatMap<Self, F>
    where
        Self: Sized,
    {
        strategy::FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }
}

// Numeric range strategies -------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                let v = v as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// Tuple strategies ---------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// Collections --------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed size or a `usize` range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len)` — len is a size or range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// Booleans / any -----------------------------------------------------------

pub mod bool {
    use super::{Strategy, TestRng};

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

// `core::primitive::bool` disambiguates from the `bool` strategy module.
impl Arbitrary for core::primitive::bool {
    type Strategy = bool::Any;
    fn arbitrary() -> bool::Any {
        bool::ANY
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// Regex-subset string strategies -------------------------------------------

/// `&str` strategies interpret the string as a small regex subset:
/// literal chars, `.`, `[a-z0-9_]`-style classes (ranges + `\n`/`\t`
/// escapes), and `{m,n}` / `{n}` / `*` / `+` / `?` quantifiers. This
/// covers every pattern the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = atom.max - atom.min;
            let n = atom.min
                + if span > 0 {
                    rng.below(span as u64 + 1) as usize
                } else {
                    0
                };
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Characters `.` draws from: printable ASCII plus a few stress chars.
fn dot_charset() -> Vec<char> {
    let mut cs: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
    cs.extend(['\t', 'é', 'π', '→', '本']);
    cs
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                dot_charset()
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        for c in lo..=hi {
                            set.push(c);
                        }
                    } else {
                        set.push(lo);
                    }
                }
                i += 1; // closing ']'
                assert!(!set.is_empty(), "empty character class in '{pat}'");
                set
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    i += 1;
                    let mut lo = String::new();
                    while chars[i].is_ascii_digit() {
                        lo.push(chars[i]);
                        i += 1;
                    }
                    let lo: usize = lo.parse().unwrap();
                    let hi = if chars[i] == ',' {
                        i += 1;
                        let mut hi = String::new();
                        while chars[i].is_ascii_digit() {
                            hi.push(chars[i]);
                            i += 1;
                        }
                        hi.parse().unwrap()
                    } else {
                        lo
                    };
                    assert_eq!(chars[i], '}', "malformed quantifier in '{pat}'");
                    i += 1;
                    (lo, hi)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

// Macros -------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-definition macro. Each function runs `config.cases` times
/// with inputs drawn from its strategies; the per-test seed is derived
/// from the test name so runs are reproducible.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = {
                    // FNV-1a over the test name: stable per-test seed.
                    let mut h: u64 = 0xcbf29ce484222325;
                    for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100000001b3);
                    }
                    h
                };
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::from_seed(
                        seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::strategy::OneOf;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, Strategy};

    /// `prop::collection::vec(...)`-style access.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 0i32..10, v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn mapped_and_oneof(s in prop_oneof![Just(1u8), Just(7u8)], t in (0u8..3).prop_map(|v| v * 2)) {
            prop_assert!(s == 1 || s == 7);
            prop_assert!(t % 2 == 0 && t <= 4);
        }

        #[test]
        fn regex_subset(name in "[a-z][a-z0-9_]{0,12}", any_cell in ".{0,60}") {
            prop_assert!(!name.is_empty() && name.len() <= 13);
            prop_assert!(name.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(any_cell.chars().count() <= 60);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_seed(9);
        let mut b = crate::TestRng::from_seed(9);
        let s = (0i64..100, crate::collection::vec(0u32..9, 3));
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
